// Flat rule IL: each VM-eligible rule body is lowered once, ahead of
// enumeration, into a linear instruction sequence over value registers.
// The register VM in iql/vm.h executes it against the same
// RelationIndex / ValueArena / ExtentEnumerator machinery the tree-walking
// RuleSolver uses, so both engines see identical candidate lists in the
// canonical structural order and produce byte-identical outputs.
//
// Execution model. Instructions fall into two families:
//
//   * Straight-line ops (loads, construction, filters, checks). Failure of
//     any of them FAILs the current control point: the VM backtracks to the
//     innermost open scan, advances its candidate, and resumes at the
//     instruction after that scan. With no open scan, enumeration ends.
//   * Scan ops (kScanRel / kScanClass / kScanSet / kScanDelta /
//     kScanExtent) open a loop: they resolve a candidate list (delta
//     facts, an index probe when key fields are statically bound, an index
//     scan, or a materialized extent), push a frame, and iterate `dst`
//     over the list. kEmit fires the callback with the current valuation
//     and then backtracks, so the whole body runs as one flat loop nest.
//
// Eligibility. Only invention-free, choose-free rules compile
// (CompileRule returns nullopt otherwise and the evaluator falls back to
// the tree-walker for that rule). Those are exactly the rules whose head
// effects are insensitive to enumeration order -- relation / class / set
// inserts deduplicate at commit and weak-assignment candidates accumulate
// into an ordered set -- so the IL planner is free to pick its own join
// order while the observable output stays bit-identical. Oid invention
// and `choose` observe enumeration order (minting order, rng stream) and
// therefore stay on the interpreter, which doubles as the differential
// oracle for everything the VM runs.

#ifndef IQLKIT_IQL_IL_H_
#define IQLKIT_IQL_IL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/interner.h"
#include "iql/ast.h"
#include "model/type.h"

namespace iqlkit::il {

// One opcode. `pol` on check ops is the literal's polarity: the check
// FAILs unless (contains == pol).
enum class Op : uint8_t {
  // Straight-line value construction.
  kLoadConst,   // dst = arena.ConstSymbol(sym)
  kLoadRel,     // dst = Set(rho(R)), R = sym
  kLoadClass,   // dst = Set(pi(P) as oid values), P = sym
  kDeref,       // dst = nu(oid in a); FAIL on non-oid / undefined nu
  kGetField,    // dst = field #imm of the tuple in a (after kMatchTuple)
  kMakeTuple,   // dst = Tuple(shapes[imm] attrs zipped with aux regs)
  kMakeSet,     // dst = Set(aux regs)
  // Straight-line filters.
  kMatchTuple,  // a is a tuple with exactly the attrs of shapes[imm]
  kBindType,    // a is a member of type imm (binding occurrence check)
  kCmp,         // a == b (raw id compare; hash-consing makes it structural)
  // Fully-bound literal checks.
  kCheckRel,    // (b in rho(sym)) == pol
  kCheckClass,  // (b is an oid of pi(sym)) == pol
  kCheckIn,     // (b in set a) == pol; non-set a FAILs either polarity
  kCheckEq,     // (a == b) == pol
  kCheckDelta,  // b in the sorted delta facts (always positive)
  // Loop heads. aux holds the probe spec: naux/2 statically-bound key
  // fields as (attr symbol, key register) pairs, attrs ascending.
  kScanRel,     // dst ranges over rho(sym)
  kScanClass,   // dst ranges over pi(sym) as oid values
  kScanSet,     // dst ranges over the elements of the set in a
  kScanDelta,   // dst ranges over the delta facts (semi-naive variant)
  kScanExtent,  // dst ranges over the extent of type imm (binds directly)
  // Terminator.
  kEmit,        // fire the callback with theta, then backtrack
  // Fused superinstructions. Only the fusion pass (FuseRule in
  // iql/ilopt.h) emits these; CompileRule never does, so raw lowerings
  // stay fusion-free and the golden corpora pin each tier separately.
  kDestructure,   // kMatchTuple + kGetField*: shape-check the tuple in a
                  // against shapes[imm], then extract naux/2 (field
                  // position, dst register) aux pairs in one dispatch
  kScanRelKeyed,  // strict kScanRel + absorbed kMatchTuple guard: dst
                  // ranges over rho(sym) restricted to tuples of exactly
                  // shapes[imm] whose naux/2 (field position, key
                  // register) aux pairs match -- positions ascending, so
                  // the derived attr list satisfies the index Probe order
  kCmpN,          // a run of kCmp/kCheckEq(pol=true): naux/2 (a, b) aux
                  // register pairs, FAIL on the first unequal pair
};

// Total opcode count; the threaded VM's jump table is indexed by Op and
// must cover exactly this range (static_asserted in iql/vm.cc).
inline constexpr size_t kNumOps = static_cast<size_t>(Op::kCmpN) + 1;

// Sentinel for Instr::src: the instruction was synthesized by the planner
// (extent ranges, the final kEmit) rather than lowered from a body literal.
inline constexpr uint32_t kNoSrc = 0xFFFFFFFFu;

struct Instr {
  Op op = Op::kEmit;
  bool pol = true;      // polarity for kCheck*
  // Strict probe spec (set only by the IL optimizer, iql/ilopt.h): the VM
  // itself skips scan candidates whose keyed fields differ from the key
  // registers, instead of trusting the index's hash buckets. That makes
  // the spec an exact filter -- index buckets only prefilter (collisions
  // and index-off scans still deliver non-matching candidates) -- which is
  // what licenses deleting the probe-implied post-scan field compares.
  bool strict = false;
  uint16_t dst = 0;     // result / scan register
  uint16_t a = 0;       // first operand register
  uint16_t b = 0;       // second operand register
  Symbol sym = kInvalidSymbol;  // relation / class / constant symbol
  uint32_t imm = 0;     // TypeId, shape index, or field position
  uint32_t aux = 0;     // offset into CompiledRule::aux
  uint32_t naux = 0;    // operand count at aux
  // Provenance: index of the body literal this instruction lowers (into
  // Rule::body), or kNoSrc. The IL lint maps diagnostics back to the
  // literal's SourceSpan through this.
  uint32_t src = kNoSrc;
};

// A lowered rule body. `theta` lists every body variable with the register
// holding its binding at kEmit, sorted by symbol -- exactly the keys the
// tree-walker's Bindings map carries, so downstream head evaluation,
// satisfiability filtering, and invention-free Apply are engine-agnostic.
struct CompiledRule {
  std::vector<Instr> code;
  std::vector<uint32_t> aux;                    // packed operand lists
  std::vector<std::vector<Symbol>> shapes;      // tuple attr lists, sorted
  std::vector<std::pair<Symbol, uint16_t>> theta;  // var -> register
  uint16_t num_regs = 0;
  // Body literal treated as the semi-naive delta (ranged over the delta
  // facts via kScanDelta, or constrained by kCheckDelta when fully
  // bound), or npos for the full-evaluation variant.
  size_t delta_literal = static_cast<size_t>(-1);
};

inline constexpr size_t kNoDelta = static_cast<size_t>(-1);

// Lowers `rule` (typechecked, inside `prog`) to IL. Returns nullopt when
// the rule is outside the VM-eligible fragment -- oid invention, choose,
// or a shape the static planner declines -- in which case the evaluator
// uses the tree-walking solver for this rule.
std::optional<CompiledRule> CompileRule(const Program& prog, const Rule& rule,
                                        size_t delta_literal = kNoDelta);

// Deterministic textual rendering of one compiled rule, used by the
// `:il` dump and the golden IL corpus. Strict probe specs render as
// `probe![...]`.
std::string Disassemble(const CompiledRule& cr, const SymbolTable& syms,
                        const TypePool& types,
                        const std::string& indent = "  ");

// One instruction of `cr`, without the leading "%pc:" tag -- the form the
// IL lint embeds in L-series diagnostic messages.
std::string RenderInstruction(const CompiledRule& cr, size_t pc,
                              const SymbolTable& syms, const TypePool& types);

// Renders the IL of every rule in a typechecked program, stage by stage,
// marking tree-walk fallbacks. Stable across runs for a given source.
std::string DumpProgramIl(const Program& prog, const SymbolTable& syms,
                          const TypePool& types);

}  // namespace iqlkit::il

#endif  // IQLKIT_IQL_IL_H_
