#ifndef IQLKIT_INHERIT_ISA_H_
#define IQLKIT_INHERIT_ISA_H_

#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/type_algebra.h"
#include "model/universe.h"

namespace iqlkit {

// The isa hierarchy of Definition 6.2: a partial order <= on class names.
// "Every ta isa student" is Declare(ta, student).
class IsaHierarchy {
 public:
  // Declares sub <= super. Rejects edges that would create a cycle.
  Status Declare(Symbol sub, Symbol super);

  // Reflexive-transitive: a <= b?
  bool IsSubclass(Symbol a, Symbol b) const;

  // All classes <= cls among `universe_of_classes`, including cls itself
  // (the classes whose oids an inherited assignment pools into cls,
  // Def 6.1.1).
  std::vector<Symbol> SubclassesOf(Symbol cls,
                                   const std::vector<Symbol>& all) const;
  // All classes >= cls among `all`, including cls (whose types cls
  // inherits, §6.2).
  std::vector<Symbol> SuperclassesOf(Symbol cls,
                                     const std::vector<Symbol>& all) const;

 private:
  std::map<Symbol, std::set<Symbol>> direct_supers_;
};

// The inherited oid assignment pi-bar of Definition 6.1.1 as a
// ClassResolver: an oid created in class P belongs to every P' >= P.
// Wraps a disjoint instance (which records each oid's creation class).
class InheritedResolver : public ClassResolver {
 public:
  InheritedResolver(const Instance* instance, const IsaHierarchy* isa)
      : instance_(instance), isa_(isa) {}

  bool OidInClass(Oid o, Symbol cls) const override;

 private:
  const Instance* instance_;
  const IsaHierarchy* isa_;
};

// The meet of two types under the *-interpretation (§6.2 / Prop 6.1):
// tuple types intersect by *uniting* their attribute sets (width
// subtyping), e.g. [A1:D,A2:D] & [A2:D,A3:D] == [A1:D,A2:D,A3:D].
// Sound over every oid assignment under the *-interpretation.
TypeId StarMeet(TypePool* pool, TypeId a, TypeId b);

// tau_P (§6.2): the *-meet of T(P') over all P' >= P -- the exact value
// type of objects created in class P under inheritance.
Result<TypeId> TauType(Universe* universe, const Schema& schema,
                       const IsaHierarchy& isa, Symbol cls);

// Compiles a schema-with-isa into a plain schema on which stock IQL runs
// unchanged (the §6.2 construction): each class type becomes tau_P, and
// every class reference Q (in class and relation types) is replaced by the
// union of Q's subclasses, realizing the inherited assignment through
// union types.
Result<Schema> CompileInheritance(Universe* universe, const Schema& schema,
                                  const IsaHierarchy& isa);

// Definition 6.2.2, applied directly (without compiling): checks that
//   (1) rho(R) lies in ⟦T(R)⟧ under the *inherited* assignment pi-bar,
//   (2) each nu(o) for o created in P lies in ⟦tau_P⟧ under pi-bar
//       (unstarred, "to have the schema fully specify the structure"),
//   (3) nu is total on set-valued classes,
// plus the oid-closure condition. The instance's own (disjoint) class
// assignment records each oid's creation class.
Status ValidateWithInheritance(const Instance& instance,
                               const Schema& schema,
                               const IsaHierarchy& isa);

}  // namespace iqlkit

#endif  // IQLKIT_INHERIT_ISA_H_
