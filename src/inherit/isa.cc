#include "inherit/isa.h"

#include <algorithm>

#include "base/logging.h"

namespace iqlkit {

Status IsaHierarchy::Declare(Symbol sub, Symbol super) {
  if (sub == super) return Status::Ok();  // reflexive, nothing to record
  if (IsSubclass(super, sub)) {
    return InvalidArgumentError("isa cycle: the superclass is already a "
                                "subclass of the subclass");
  }
  direct_supers_[sub].insert(super);
  return Status::Ok();
}

bool IsaHierarchy::IsSubclass(Symbol a, Symbol b) const {
  if (a == b) return true;
  auto it = direct_supers_.find(a);
  if (it == direct_supers_.end()) return false;
  for (Symbol super : it->second) {
    if (IsSubclass(super, b)) return true;
  }
  return false;
}

std::vector<Symbol> IsaHierarchy::SubclassesOf(
    Symbol cls, const std::vector<Symbol>& all) const {
  std::vector<Symbol> out;
  for (Symbol c : all) {
    if (IsSubclass(c, cls)) out.push_back(c);
  }
  return out;
}

std::vector<Symbol> IsaHierarchy::SuperclassesOf(
    Symbol cls, const std::vector<Symbol>& all) const {
  std::vector<Symbol> out;
  for (Symbol c : all) {
    if (IsSubclass(cls, c)) out.push_back(c);
  }
  return out;
}

bool InheritedResolver::OidInClass(Oid o, Symbol cls) const {
  auto creation = instance_->ClassOf(o);
  return creation.has_value() && isa_->IsSubclass(*creation, cls);
}

TypeId StarMeet(TypePool* pool, TypeId a, TypeId b) {
  if (a == b) return a;
  const TypeNode& an = pool->node(a);
  const TypeNode& bn = pool->node(b);
  if (an.kind == TypeKind::kEmpty || bn.kind == TypeKind::kEmpty) {
    return pool->Empty();
  }
  if (an.kind == TypeKind::kUnion) {
    std::vector<TypeId> members;
    members.reserve(an.children.size());
    for (TypeId child : an.children) {
      members.push_back(StarMeet(pool, child, b));
    }
    return pool->Union(std::move(members));
  }
  if (bn.kind == TypeKind::kUnion) return StarMeet(pool, b, a);
  if (an.kind == TypeKind::kIntersect || bn.kind == TypeKind::kIntersect) {
    // Residual class intersections only; combine member lists.
    if ((an.kind == TypeKind::kClass || an.kind == TypeKind::kIntersect) &&
        (bn.kind == TypeKind::kClass || bn.kind == TypeKind::kIntersect)) {
      return pool->Intersect2(a, b);
    }
    return pool->Empty();
  }
  switch (an.kind) {
    case TypeKind::kBase:
      return bn.kind == TypeKind::kBase ? a : pool->Empty();
    case TypeKind::kClass:
      return bn.kind == TypeKind::kClass ? pool->Intersect2(a, b)
                                         : pool->Empty();
    case TypeKind::kSet:
      if (bn.kind != TypeKind::kSet) return pool->Empty();
      return pool->Set(StarMeet(pool, an.children[0], bn.children[0]));
    case TypeKind::kTuple: {
      if (bn.kind != TypeKind::kTuple) return pool->Empty();
      // *-interpretation: "a record with at least A's fields" meets "at
      // least B's fields" = "at least the union of the fields" (Prop 6.1).
      std::vector<std::pair<Symbol, TypeId>> fields = an.fields;
      for (const auto& [attr, bt] : bn.fields) {
        auto it = std::find_if(
            fields.begin(), fields.end(),
            [&](const auto& f) { return f.first == attr; });
        if (it == fields.end()) {
          fields.emplace_back(attr, bt);
        } else {
          it->second = StarMeet(pool, it->second, bt);
        }
      }
      return pool->Tuple(std::move(fields));
    }
    case TypeKind::kEmpty:
    case TypeKind::kUnion:
    case TypeKind::kIntersect:
      break;  // handled above
  }
  IQL_CHECK(false) << "unreachable StarMeet case";
  return pool->Empty();
}

Result<TypeId> TauType(Universe* universe, const Schema& schema,
                       const IsaHierarchy& isa, Symbol cls) {
  TypePool& pool = universe->types();
  std::vector<Symbol> supers = isa.SuperclassesOf(cls, schema.class_names());
  if (supers.empty()) {
    return NotFoundError("class not in schema: " +
                         std::string(universe->Name(cls)));
  }
  TypeId tau = kInvalidType;
  for (Symbol super : supers) {
    TypeId t = schema.ClassType(super);
    tau = tau == kInvalidType ? t : StarMeet(&pool, tau, t);
  }
  if (pool.node(tau).kind == TypeKind::kEmpty) {
    return TypeError("class '" + std::string(universe->Name(cls)) +
                     "' inherits structurally incompatible types");
  }
  return tau;
}

namespace {

// Replaces every class reference Q by the union of Q's subclasses.
TypeId SubstituteSubclassUnions(Universe* universe, const Schema& schema,
                                const IsaHierarchy& isa, TypeId t) {
  TypePool& pool = universe->types();
  const TypeNode n = pool.node(t);  // copy: pool may grow below
  switch (n.kind) {
    case TypeKind::kEmpty:
    case TypeKind::kBase:
      return t;
    case TypeKind::kClass: {
      std::vector<TypeId> members;
      for (Symbol sub : isa.SubclassesOf(n.class_name,
                                         schema.class_names())) {
        members.push_back(pool.Class(sub));
      }
      return pool.Union(std::move(members));
    }
    case TypeKind::kTuple: {
      std::vector<std::pair<Symbol, TypeId>> fields = n.fields;
      for (auto& [attr, child] : fields) {
        child = SubstituteSubclassUnions(universe, schema, isa, child);
      }
      return pool.Tuple(std::move(fields));
    }
    case TypeKind::kSet:
      return pool.Set(
          SubstituteSubclassUnions(universe, schema, isa, n.children[0]));
    case TypeKind::kUnion:
    case TypeKind::kIntersect: {
      std::vector<TypeId> members = n.children;
      for (TypeId& child : members) {
        child = SubstituteSubclassUnions(universe, schema, isa, child);
      }
      return n.kind == TypeKind::kUnion ? pool.Union(std::move(members))
                                        : pool.Intersect(std::move(members));
    }
  }
  return t;
}

}  // namespace

Status ValidateWithInheritance(const Instance& instance,
                               const Schema& schema,
                               const IsaHierarchy& isa) {
  Universe* u = instance.universe();
  InheritedResolver resolver(&instance, &isa);
  TypeMembership membership(&u->types(), &u->values(), &resolver);
  const ValueStore& values = u->values();
  // (1) relations, under pi-bar.
  for (Symbol r : schema.relation_names()) {
    TypeId t = schema.RelationType(r);
    for (ValueId v : instance.Relation(r)) {
      if (!membership.Contains(t, v)) {
        return TypeError("value " + values.ToString(v) + " in relation '" +
                         std::string(u->Name(r)) +
                         "' is not of type " + u->types().ToString(t) +
                         " under the inherited assignment");
      }
    }
  }
  // (2) nu-values against tau_P; (3) totality on set-valued classes.
  for (Symbol p : schema.class_names()) {
    IQL_ASSIGN_OR_RETURN(TypeId tau, TauType(u, schema, isa, p));
    tau = EliminateIntersection(&u->types(), tau);
    bool set_valued = schema.IsSetValuedClass(p);
    for (Oid o : instance.ClassExtent(p)) {
      auto v = instance.ValueOf(o);
      if (!v.has_value()) {
        if (set_valued) {
          return TypeError("nu undefined for set-valued oid " +
                           instance.OidLabel(o));
        }
        continue;
      }
      if (!membership.Contains(tau, *v)) {
        return TypeError("nu(" + instance.OidLabel(o) + ") = " +
                         values.ToString(*v) + " is not of type tau_" +
                         std::string(u->Name(p)) + " = " +
                         u->types().ToString(tau));
      }
    }
  }
  // Oid closure.
  for (Oid o : instance.Objects()) {
    if (!instance.HasOid(o)) {
      return TypeError("oid @" + std::to_string(o.raw) +
                       " occurs but belongs to no class");
    }
  }
  return Status::Ok();
}

Result<Schema> CompileInheritance(Universe* universe, const Schema& schema,
                                  const IsaHierarchy& isa) {
  TypePool& pool = universe->types();
  Schema out(universe);
  for (Symbol cls : schema.class_names()) {
    IQL_ASSIGN_OR_RETURN(TypeId tau, TauType(universe, schema, isa, cls));
    // Eliminate residual class-class intersections (disjoint creation
    // classes), then realize inheritance through subclass unions.
    tau = EliminateIntersection(&pool, tau);
    TypeId compiled = SubstituteSubclassUnions(universe, schema, isa, tau);
    IQL_RETURN_IF_ERROR(
        out.DeclareClass(universe->Name(cls), compiled));
  }
  for (Symbol rel : schema.relation_names()) {
    TypeId compiled = SubstituteSubclassUnions(universe, schema, isa,
                                               schema.RelationType(rel));
    IQL_RETURN_IF_ERROR(out.DeclareRelation(universe->Name(rel), compiled));
  }
  IQL_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace iqlkit
