#include "vmodel/iqlv.h"

namespace iqlkit {

Result<VInstance> RunOnValues(Universe* universe,
                              std::shared_ptr<const Schema> schema,
                              std::shared_ptr<const Schema> in,
                              std::shared_ptr<const Schema> out,
                              Program* program, const VInstance& input,
                              const EvalOptions& options,
                              EvalStats* stats) {
  IQL_RETURN_IF_ERROR(ValidateVSchema(*in));
  IQL_RETURN_IF_ERROR(ValidateVSchema(*out));
  // phi: pure values -> objects with fresh oids.
  IQL_ASSIGN_OR_RETURN(Instance objects, Phi(universe, in, input));
  // Gamma: the ordinary object-based evaluator.
  IQL_ASSIGN_OR_RETURN(
      Instance result,
      EvaluateProgram(universe, *schema, program, objects, options, stats));
  // psi of the output projection: objects dissolve back into values;
  // bisimulation canonicalization eliminates copies.
  Instance projected = result.Project(out);
  // psi requires nu total; output objects the program never defined are a
  // program bug worth a clear message.
  for (Symbol p : out->class_names()) {
    for (Oid o : projected.ClassExtent(p)) {
      if (!projected.ValueOf(o).has_value()) {
        return FailedPreconditionError(
            "output object with undefined value: the program must define "
            "every oid it places in the output v-schema (§7 considers "
            "total-nu instances)");
      }
    }
  }
  return Psi(projected);
}

}  // namespace iqlkit
