#ifndef IQLKIT_VMODEL_BISIM_H_
#define IQLKIT_VMODEL_BISIM_H_

#include <map>
#include <vector>

#include "vmodel/rtree.h"

namespace iqlkit {

// Equality of pure values is bisimilarity of their term-graph nodes: two
// nodes are bisimilar iff their infinite unfoldings are the same tree
// (with set children compared as sets). Computed by partition refinement
// to the coarsest stable partition. Exact (signature-based, no hashing).
//
// Placeholder nodes are never bisimilar to anything (not even each other):
// they denote unknown values.
std::vector<uint32_t> BisimulationBlocks(const TermGraph& graph);

bool Bisimilar(const TermGraph& graph, RNodeId a, RNodeId b);

// The quotient graph: one node per bisimulation block reachable from any
// node (duplicate elimination for pure values). `node_map[old] = new`.
TermGraph QuotientGraph(const TermGraph& graph,
                        std::vector<RNodeId>* node_map);

// Deep-copies the subgraph reachable from `root` in `src` into `dst`
// (cycles preserved). `copied` caches already-copied nodes across calls.
RNodeId CopySubgraph(TermGraph* dst, const TermGraph& src, RNodeId root,
                     std::map<RNodeId, RNodeId>* copied);

// The finite unfolding of `root` to `depth` levels: the prefix of the
// (possibly infinite) tree the node denotes, rendered as an *acyclic*
// term graph whose frontier nodes beyond the depth become placeholders.
// Two nodes are bisimilar iff their unfoldings agree at every depth
// (Courcelle); the test suite checks the finite direction.
TermGraph UnfoldToDepth(const TermGraph& graph, RNodeId root, int depth,
                        RNodeId* out_root);

}  // namespace iqlkit

#endif  // IQLKIT_VMODEL_BISIM_H_
