#include "vmodel/bisim.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "base/logging.h"

namespace iqlkit {

std::vector<uint32_t> BisimulationBlocks(const TermGraph& graph) {
  size_t n = graph.size();
  std::vector<uint32_t> block(n, 0);
  // Initial partition: by node kind and constant atom; placeholders are
  // singletons (distinct unknowns).
  {
    std::map<std::tuple<int, Symbol, size_t>, uint32_t> index;
    uint32_t next = 0;
    for (size_t i = 0; i < n; ++i) {
      const RNode& node = graph.node(static_cast<RNodeId>(i));
      std::tuple<int, Symbol, size_t> key;
      if (node.kind == RNodeKind::kPlaceholder) {
        key = {0, kInvalidSymbol, i};  // unique per node
      } else if (node.kind == RNodeKind::kConst) {
        key = {1, node.atom, 0};
      } else if (node.kind == RNodeKind::kTuple) {
        key = {2, kInvalidSymbol, 0};
      } else {
        key = {3, kInvalidSymbol, 0};
      }
      auto [it, inserted] = index.emplace(key, next);
      if (inserted) ++next;
      block[i] = it->second;
    }
  }
  // Refine: split blocks by child-block signatures until stable.
  while (true) {
    using Signature =
        std::tuple<uint32_t,                                   // old block
                   std::vector<std::pair<Symbol, uint32_t>>,   // tuple sig
                   std::vector<uint32_t>>;                     // set sig
    std::map<Signature, uint32_t> index;
    std::vector<uint32_t> next_block(n);
    uint32_t next = 0;
    for (size_t i = 0; i < n; ++i) {
      const RNode& node = graph.node(static_cast<RNodeId>(i));
      Signature sig;
      std::get<0>(sig) = block[i];
      if (node.kind == RNodeKind::kTuple) {
        auto& fields = std::get<1>(sig);
        fields.reserve(node.fields.size());
        for (const auto& [attr, child] : node.fields) {
          fields.emplace_back(attr, block[child]);
        }
      } else if (node.kind == RNodeKind::kSet) {
        auto& elems = std::get<2>(sig);
        elems.reserve(node.elems.size());
        for (RNodeId child : node.elems) elems.push_back(block[child]);
        std::sort(elems.begin(), elems.end());
        elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
      }
      auto [it, inserted] = index.emplace(std::move(sig), next);
      if (inserted) ++next;
      next_block[i] = it->second;
    }
    std::set<uint32_t> before(block.begin(), block.end());
    std::set<uint32_t> after(next_block.begin(), next_block.end());
    bool stable = before.size() == after.size();
    block = std::move(next_block);
    if (stable) break;
  }
  return block;
}

bool Bisimilar(const TermGraph& graph, RNodeId a, RNodeId b) {
  std::vector<uint32_t> block = BisimulationBlocks(graph);
  return block[a] == block[b];
}

TermGraph QuotientGraph(const TermGraph& graph,
                        std::vector<RNodeId>* node_map) {
  std::vector<uint32_t> block = BisimulationBlocks(graph);
  TermGraph out(graph.symbols());
  std::map<uint32_t, RNodeId> block_node;
  node_map->assign(graph.size(), kInvalidRNode);
  // First pass: allocate one placeholder per block.
  for (size_t i = 0; i < graph.size(); ++i) {
    auto [it, inserted] = block_node.emplace(block[i], kInvalidRNode);
    if (inserted) it->second = out.AddPlaceholder();
    (*node_map)[i] = it->second;
  }
  // Second pass: fill each block's node from any representative.
  std::set<RNodeId> filled;
  for (size_t i = 0; i < graph.size(); ++i) {
    RNodeId target = (*node_map)[i];
    if (!filled.insert(target).second) continue;
    const RNode& node = graph.node(static_cast<RNodeId>(i));
    switch (node.kind) {
      case RNodeKind::kPlaceholder:
        break;  // stays a placeholder
      case RNodeKind::kConst:
        IQL_CHECK(out.FillConst(target, node.atom).ok());
        break;
      case RNodeKind::kTuple: {
        std::vector<std::pair<Symbol, RNodeId>> fields;
        fields.reserve(node.fields.size());
        for (const auto& [attr, child] : node.fields) {
          fields.emplace_back(attr, (*node_map)[child]);
        }
        IQL_CHECK(out.FillTuple(target, std::move(fields)).ok());
        break;
      }
      case RNodeKind::kSet: {
        std::vector<RNodeId> elems;
        for (RNodeId child : node.elems) elems.push_back((*node_map)[child]);
        std::sort(elems.begin(), elems.end());
        elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
        IQL_CHECK(out.FillSet(target, std::move(elems)).ok());
        break;
      }
    }
  }
  return out;
}

namespace {

RNodeId Unfold(TermGraph* dst, const TermGraph& src, RNodeId root,
               int depth) {
  const RNode& node = src.node(root);
  if (node.kind == RNodeKind::kPlaceholder || depth <= 0) {
    return dst->AddPlaceholder();
  }
  switch (node.kind) {
    case RNodeKind::kConst:
      return dst->AddConst(dst->symbols() == src.symbols()
                               ? node.atom
                               : dst->symbols()->Intern(
                                     src.symbols()->name(node.atom)));
    case RNodeKind::kTuple: {
      std::vector<std::pair<Symbol, RNodeId>> fields;
      for (const auto& [attr, child] : node.fields) {
        Symbol a = dst->symbols() == src.symbols()
                       ? attr
                       : dst->symbols()->Intern(src.symbols()->name(attr));
        fields.emplace_back(a, Unfold(dst, src, child, depth - 1));
      }
      return dst->AddTuple(std::move(fields));
    }
    case RNodeKind::kSet: {
      std::vector<RNodeId> elems;
      for (RNodeId child : node.elems) {
        elems.push_back(Unfold(dst, src, child, depth - 1));
      }
      return dst->AddSet(std::move(elems));
    }
    case RNodeKind::kPlaceholder:
      break;
  }
  return dst->AddPlaceholder();
}

}  // namespace

TermGraph UnfoldToDepth(const TermGraph& graph, RNodeId root, int depth,
                        RNodeId* out_root) {
  TermGraph out(graph.symbols());
  *out_root = Unfold(&out, graph, root, depth);
  return out;
}

RNodeId CopySubgraph(TermGraph* dst, const TermGraph& src, RNodeId root,
                     std::map<RNodeId, RNodeId>* copied) {
  auto it = copied->find(root);
  if (it != copied->end()) return it->second;
  RNodeId target = dst->AddPlaceholder();
  copied->emplace(root, target);
  const RNode& node = src.node(root);
  switch (node.kind) {
    case RNodeKind::kPlaceholder:
      break;
    case RNodeKind::kConst: {
      Symbol atom = dst->symbols() == src.symbols()
                        ? node.atom
                        : dst->symbols()->Intern(
                              src.symbols()->name(node.atom));
      IQL_CHECK(dst->FillConst(target, atom).ok());
      break;
    }
    case RNodeKind::kTuple: {
      std::vector<std::pair<Symbol, RNodeId>> fields;
      for (const auto& [attr, child] : node.fields) {
        Symbol a = dst->symbols() == src.symbols()
                       ? attr
                       : dst->symbols()->Intern(src.symbols()->name(attr));
        fields.emplace_back(a, CopySubgraph(dst, src, child, copied));
      }
      IQL_CHECK(dst->FillTuple(target, std::move(fields)).ok());
      break;
    }
    case RNodeKind::kSet: {
      std::vector<RNodeId> elems;
      for (RNodeId child : node.elems) {
        elems.push_back(CopySubgraph(dst, src, child, copied));
      }
      IQL_CHECK(dst->FillSet(target, std::move(elems)).ok());
      break;
    }
  }
  return target;
}

}  // namespace iqlkit
