#ifndef IQLKIT_VMODEL_ENCODE_H_
#define IQLKIT_VMODEL_ENCODE_H_

#include <map>
#include <memory>
#include <vector>

#include "base/result.h"
#include "model/instance.h"
#include "model/schema.h"
#include "vmodel/bisim.h"
#include "vmodel/rtree.h"

namespace iqlkit {

// A v-instance over a v-schema (Definitions 7.1.1 / 7.1.2): each class
// name denotes a finite set of pure values, represented as roots in a
// shared term graph. All roots are kept canonical (bisimulation-quotiented
// and deduplicated) so per-class root sets are genuine value *sets*.
struct VInstance {
  explicit VInstance(SymbolTable* symbols) : graph(symbols) {}

  TermGraph graph;
  std::map<Symbol, std::vector<RNodeId>> classes;
};

// Checks the v-schema conditions (Def 7.1.1) on a plain schema: no
// relations, types built from base/set/tuple/class only (no unions,
// intersections, or empty), and no T(P) that is bare class name
// (condition (1)).
Status ValidateVSchema(const Schema& schema);

// psi (§7.1, "from objects to values"): solves the equation system
// { o = nu(o) } over the oids -- each oid becomes a graph node whose
// content is its value with oid leaves wired to the corresponding nodes --
// then canonicalizes. Duplicate oid values collapse ("duplicates are
// eliminated"). Every oid must have a defined value. The result's values
// are regular trees by construction (Prop 7.1.3).
Result<VInstance> Psi(const Instance& instance);

// phi (§7.1, "from values to objects"): mints one oid per pure value per
// class and rebuilds nu by substituting, at class-typed positions of T(P),
// the oid of the corresponding value (f_P in the paper). Fails if a
// class-typed position holds a value not present in that class's extent.
Result<Instance> Phi(Universe* universe,
                     std::shared_ptr<const Schema> vschema,
                     const VInstance& v);

// Equality of v-instances: same classes, same value sets up to
// bisimulation (pure values have no identities).
bool VInstanceEqual(const VInstance& a, const VInstance& b);

// Canonicalizes in place: quotient the graph, dedup class roots.
void Canonicalize(VInstance* v);

}  // namespace iqlkit

#endif  // IQLKIT_VMODEL_ENCODE_H_
