#ifndef IQLKIT_VMODEL_RTREE_H_
#define IQLKIT_VMODEL_RTREE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/interner.h"
#include "base/result.h"

namespace iqlkit {

// The pure values of §7.1: possibly infinite trees with constant, tuple,
// and set nodes -- no oids. A *regular* infinite tree has finitely many
// distinct subtrees (Courcelle), so every pure value occurring in a
// v-instance is representable as a node of a finite rooted term graph
// (Prop 7.1.3); that graph is this class. Cycles in the graph encode the
// infinite unfoldings.
//
// Two nodes denote the same pure value iff they are bisimilar
// (vmodel/bisim.h); a TermGraph does not hash-cons, precisely because
// cyclic structures must be constructible incrementally via placeholders.
using RNodeId = uint32_t;
inline constexpr RNodeId kInvalidRNode = 0xFFFFFFFFu;

enum class RNodeKind : uint8_t { kConst, kTuple, kSet, kPlaceholder };

struct RNode {
  RNodeKind kind = RNodeKind::kPlaceholder;
  Symbol atom = kInvalidSymbol;                     // kConst
  std::vector<std::pair<Symbol, RNodeId>> fields;   // kTuple (sorted)
  std::vector<RNodeId> elems;                       // kSet (unsorted here;
                                                    // semantics is a set)
};

class TermGraph {
 public:
  explicit TermGraph(SymbolTable* symbols) : symbols_(symbols) {}

  RNodeId AddConst(Symbol atom);
  RNodeId AddConst(std::string_view atom);
  RNodeId AddTuple(std::vector<std::pair<Symbol, RNodeId>> fields);
  RNodeId AddSet(std::vector<RNodeId> elems);

  // Two-phase construction for cycles: reserve a node, point others at it,
  // then fill it in.
  RNodeId AddPlaceholder();
  Status FillTuple(RNodeId id, std::vector<std::pair<Symbol, RNodeId>> fields);
  Status FillSet(RNodeId id, std::vector<RNodeId> elems);
  Status FillConst(RNodeId id, Symbol atom);

  const RNode& node(RNodeId id) const;
  size_t size() const { return nodes_.size(); }
  SymbolTable* symbols() const { return symbols_; }

  // True if no placeholder remains reachable from `root` (the value is
  // fully defined).
  bool Complete(RNodeId root) const;

  // Renders the value with back-references for cycles, e.g.
  // "#0=[succ: #0]".
  std::string ToString(RNodeId root) const;

 private:
  RNodeId Add(RNode n);

  SymbolTable* symbols_;
  std::vector<RNode> nodes_;
};

}  // namespace iqlkit

#endif  // IQLKIT_VMODEL_RTREE_H_
