#include "vmodel/rtree.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"

namespace iqlkit {

RNodeId TermGraph::Add(RNode n) {
  IQL_CHECK(nodes_.size() < kInvalidRNode);
  nodes_.push_back(std::move(n));
  return static_cast<RNodeId>(nodes_.size() - 1);
}

RNodeId TermGraph::AddConst(Symbol atom) {
  RNode n;
  n.kind = RNodeKind::kConst;
  n.atom = atom;
  return Add(std::move(n));
}

RNodeId TermGraph::AddConst(std::string_view atom) {
  return AddConst(symbols_->Intern(atom));
}

RNodeId TermGraph::AddTuple(std::vector<std::pair<Symbol, RNodeId>> fields) {
  RNodeId id = AddPlaceholder();
  IQL_CHECK(FillTuple(id, std::move(fields)).ok());
  return id;
}

RNodeId TermGraph::AddSet(std::vector<RNodeId> elems) {
  RNodeId id = AddPlaceholder();
  IQL_CHECK(FillSet(id, std::move(elems)).ok());
  return id;
}

RNodeId TermGraph::AddPlaceholder() { return Add(RNode{}); }

Status TermGraph::FillTuple(RNodeId id,
                            std::vector<std::pair<Symbol, RNodeId>> fields) {
  IQL_CHECK(id < nodes_.size());
  if (nodes_[id].kind != RNodeKind::kPlaceholder) {
    return FailedPreconditionError("node already filled");
  }
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    if (fields[i - 1].first == fields[i].first) {
      return InvalidArgumentError("duplicate tuple attribute");
    }
  }
  nodes_[id].kind = RNodeKind::kTuple;
  nodes_[id].fields = std::move(fields);
  return Status::Ok();
}

Status TermGraph::FillSet(RNodeId id, std::vector<RNodeId> elems) {
  IQL_CHECK(id < nodes_.size());
  if (nodes_[id].kind != RNodeKind::kPlaceholder) {
    return FailedPreconditionError("node already filled");
  }
  nodes_[id].kind = RNodeKind::kSet;
  nodes_[id].elems = std::move(elems);
  return Status::Ok();
}

Status TermGraph::FillConst(RNodeId id, Symbol atom) {
  IQL_CHECK(id < nodes_.size());
  if (nodes_[id].kind != RNodeKind::kPlaceholder) {
    return FailedPreconditionError("node already filled");
  }
  nodes_[id].kind = RNodeKind::kConst;
  nodes_[id].atom = atom;
  return Status::Ok();
}

const RNode& TermGraph::node(RNodeId id) const {
  IQL_CHECK(id < nodes_.size());
  return nodes_[id];
}

bool TermGraph::Complete(RNodeId root) const {
  std::set<RNodeId> visited;
  std::vector<RNodeId> stack = {root};
  while (!stack.empty()) {
    RNodeId id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    const RNode& n = node(id);
    if (n.kind == RNodeKind::kPlaceholder) return false;
    for (const auto& [attr, child] : n.fields) stack.push_back(child);
    for (RNodeId child : n.elems) stack.push_back(child);
  }
  return true;
}

std::string TermGraph::ToString(RNodeId root) const {
  // Nodes on more than one path (or on a cycle) get "#k=" definitions and
  // "#k" back-references.
  std::map<RNodeId, int> ref_ids;
  std::set<RNodeId> in_progress, seen;
  std::function<void(RNodeId)> scan = [&](RNodeId id) {
    if (in_progress.count(id)) {
      if (!ref_ids.count(id)) {
        ref_ids[id] = static_cast<int>(ref_ids.size());
      }
      return;
    }
    if (!seen.insert(id).second) return;
    in_progress.insert(id);
    const RNode& n = node(id);
    for (const auto& [attr, child] : n.fields) scan(child);
    for (RNodeId child : n.elems) scan(child);
    in_progress.erase(id);
  };
  scan(root);

  std::set<RNodeId> emitted;
  std::function<std::string(RNodeId)> render = [&](RNodeId id) -> std::string {
    auto ref = ref_ids.find(id);
    std::string prefix;
    if (ref != ref_ids.end()) {
      if (emitted.count(id)) return "#" + std::to_string(ref->second);
      emitted.insert(id);
      prefix = "#" + std::to_string(ref->second) + "=";
    }
    const RNode& n = node(id);
    switch (n.kind) {
      case RNodeKind::kPlaceholder:
        return prefix + "?";
      case RNodeKind::kConst:
        return prefix + "\"" + std::string(symbols_->name(n.atom)) + "\"";
      case RNodeKind::kTuple: {
        std::string out = prefix + "[";
        bool first = true;
        for (const auto& [attr, child] : n.fields) {
          if (!first) out += ", ";
          first = false;
          out += std::string(symbols_->name(attr)) + ": " + render(child);
        }
        return out + "]";
      }
      case RNodeKind::kSet: {
        std::string out = prefix + "{";
        bool first = true;
        for (RNodeId child : n.elems) {
          if (!first) out += ", ";
          first = false;
          out += render(child);
        }
        return out + "}";
      }
    }
    return prefix + "?";
  };
  return render(root);
}

}  // namespace iqlkit
