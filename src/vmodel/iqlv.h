#ifndef IQLKIT_VMODEL_IQLV_H_
#define IQLKIT_VMODEL_IQLV_H_

#include <memory>

#include "base/result.h"
#include "iql/ast.h"
#include "iql/eval.h"
#include "vmodel/encode.h"

namespace iqlkit {

// IQLv (§7.1, Figure 2): using IQL as the query language of the pure
// value-based model. A program from v-schema S_in to (disjoint) v-schema
// S_out is run as
//
//      V  --phi-->  phi(V)  --Gamma-->  J  --psi-->  psi(J[S_out])
//
// i.e. the input values are objectified with fresh oids, the ordinary
// object-based evaluator runs, and the output objects dissolve back into
// pure values. Oids "lose all semantic denotation to become purely
// primitives of the language": psi's bisimulation quotient performs the
// copy elimination automatically, which is why IQLv is vdio-complete
// (Theorem 7.1.5) with no up-to-copy caveat.
//
// `schema` is the full program schema; `in` / `out` name its input and
// output v-schema projections (class names only, v-types, Def 7.1.1).
Result<VInstance> RunOnValues(Universe* universe,
                              std::shared_ptr<const Schema> schema,
                              std::shared_ptr<const Schema> in,
                              std::shared_ptr<const Schema> out,
                              Program* program, const VInstance& input,
                              const EvalOptions& options = {},
                              EvalStats* stats = nullptr);

}  // namespace iqlkit

#endif  // IQLKIT_VMODEL_IQLV_H_
