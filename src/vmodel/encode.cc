#include "vmodel/encode.h"

#include <algorithm>
#include <functional>
#include <set>

#include "base/logging.h"

namespace iqlkit {

namespace {

bool IsVType(const TypePool& pool, TypeId t) {
  const TypeNode& n = pool.node(t);
  switch (n.kind) {
    case TypeKind::kBase:
    case TypeKind::kClass:
      return true;
    case TypeKind::kEmpty:
    case TypeKind::kUnion:
    case TypeKind::kIntersect:
      return false;
    case TypeKind::kTuple:
      for (const auto& [attr, child] : n.fields) {
        if (!IsVType(pool, child)) return false;
      }
      return true;
    case TypeKind::kSet:
      return IsVType(pool, n.children[0]);
  }
  return false;
}

}  // namespace

Status ValidateVSchema(const Schema& schema) {
  if (!schema.relation_names().empty()) {
    return InvalidArgumentError(
        "a v-schema has class names only (§7: compare (P, T) with "
        "(empty, P, T))");
  }
  const TypePool& pool = schema.universe()->types();
  for (Symbol cls : schema.class_names()) {
    TypeId t = schema.ClassType(cls);
    if (pool.node(t).kind == TypeKind::kClass) {
      return InvalidArgumentError(
          "T(P) must not be a bare class name (Def 7.1.1 condition (1))");
    }
    if (!IsVType(pool, t)) {
      return InvalidArgumentError(
          "v-schema types use base, class, set, and tuple constructors "
          "only (§7.1)");
    }
  }
  return Status::Ok();
}

Result<VInstance> Psi(const Instance& instance) {
  Universe* u = instance.universe();
  const ValueStore& values = u->values();
  VInstance out(&u->symbols());
  // One placeholder per oid; wire value structure to them.
  std::map<Oid, RNodeId> oid_node;
  std::set<Oid> oids = instance.Objects();
  for (Oid o : oids) oid_node[o] = out.graph.AddPlaceholder();

  // Translates an o-value tree into graph nodes (oid leaves resolve to
  // their placeholder nodes).
  std::function<Result<RNodeId>(ValueId)> translate =
      [&](ValueId v) -> Result<RNodeId> {
    const ValueNode& n = values.node(v);
    switch (n.kind) {
      case ValueKind::kConst:
        return out.graph.AddConst(n.atom);
      case ValueKind::kOid:
        return oid_node.at(n.oid);
      case ValueKind::kTuple: {
        std::vector<std::pair<Symbol, RNodeId>> fields;
        for (const auto& [attr, child] : n.fields) {
          IQL_ASSIGN_OR_RETURN(RNodeId c, translate(child));
          fields.emplace_back(attr, c);
        }
        return out.graph.AddTuple(std::move(fields));
      }
      case ValueKind::kSet: {
        std::vector<RNodeId> elems;
        for (ValueId child : n.elems) {
          IQL_ASSIGN_OR_RETURN(RNodeId c, translate(child));
          elems.push_back(c);
        }
        return out.graph.AddSet(std::move(elems));
      }
    }
    return InternalError("unknown value kind");
  };

  for (Oid o : oids) {
    auto v = instance.ValueOf(o);
    if (!v.has_value()) {
      return FailedPreconditionError(
          "psi requires nu to be total (§7 considers instances with nu "
          "defined on every oid)");
    }
    const ValueNode& n = values.node(*v);
    RNodeId target = oid_node.at(o);
    switch (n.kind) {
      case ValueKind::kOid:
        return FailedPreconditionError(
            "nu(o) is itself an oid: T(P) would be a bare class name, "
            "excluded by Def 7.1.1 (1)");
      case ValueKind::kConst:
        IQL_RETURN_IF_ERROR(out.graph.FillConst(target, n.atom));
        break;
      case ValueKind::kTuple: {
        std::vector<std::pair<Symbol, RNodeId>> fields;
        for (const auto& [attr, child] : n.fields) {
          IQL_ASSIGN_OR_RETURN(RNodeId c, translate(child));
          fields.emplace_back(attr, c);
        }
        IQL_RETURN_IF_ERROR(out.graph.FillTuple(target, std::move(fields)));
        break;
      }
      case ValueKind::kSet: {
        std::vector<RNodeId> elems;
        for (ValueId child : n.elems) {
          IQL_ASSIGN_OR_RETURN(RNodeId c, translate(child));
          elems.push_back(c);
        }
        IQL_RETURN_IF_ERROR(out.graph.FillSet(target, std::move(elems)));
        break;
      }
    }
  }
  for (Symbol cls : instance.schema().class_names()) {
    auto& roots = out.classes[cls];
    for (Oid o : instance.ClassExtent(cls)) {
      roots.push_back(oid_node.at(o));
    }
  }
  Canonicalize(&out);
  return out;
}

void Canonicalize(VInstance* v) {
  std::vector<RNodeId> node_map;
  TermGraph quotient = QuotientGraph(v->graph, &node_map);
  for (auto& [cls, roots] : v->classes) {
    for (RNodeId& r : roots) r = node_map[r];
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  }
  v->graph = std::move(quotient);
}

Result<Instance> Phi(Universe* universe,
                     std::shared_ptr<const Schema> vschema,
                     const VInstance& canonical_in) {
  IQL_RETURN_IF_ERROR(ValidateVSchema(*vschema));
  // Work on a canonical copy so value identity is node identity.
  VInstance v(canonical_in.graph.symbols());
  {
    std::map<RNodeId, RNodeId> copied;
    for (const auto& [cls, roots] : canonical_in.classes) {
      auto& out_roots = v.classes[cls];
      for (RNodeId r : roots) {
        out_roots.push_back(
            CopySubgraph(&v.graph, canonical_in.graph, r, &copied));
      }
    }
  }
  Canonicalize(&v);

  Instance out(vschema, universe);
  TypePool& types = universe->types();
  ValueStore& values = universe->values();
  // f_P: canonical node -> oid, per class.
  std::map<std::pair<Symbol, RNodeId>, Oid> f;
  for (const auto& [cls, roots] : v.classes) {
    if (!vschema->HasClass(cls)) {
      return NotFoundError("v-instance class not in schema");
    }
    for (RNodeId r : roots) {
      IQL_ASSIGN_OR_RETURN(Oid o, out.CreateOid(cls));
      f.emplace(std::make_pair(cls, r), o);
    }
  }
  // Rebuilds the o-value for `node` viewed at type `t`; class-typed
  // positions resolve through f.
  std::function<Result<ValueId>(RNodeId, TypeId)> build =
      [&](RNodeId node, TypeId t) -> Result<ValueId> {
    const TypeNode& tn = types.node(t);
    const RNode& n = v.graph.node(node);
    switch (tn.kind) {
      case TypeKind::kClass: {
        auto it = f.find(std::make_pair(tn.class_name, node));
        if (it == f.end()) {
          return InvalidArgumentError(
              "value at a " +
              std::string(universe->Name(tn.class_name)) +
              "-typed position is not in that class's extent");
        }
        return values.OfOid(it->second);
      }
      case TypeKind::kBase:
        if (n.kind != RNodeKind::kConst) {
          return TypeError("expected a constant at a D-typed position");
        }
        return values.ConstSymbol(n.atom);
      case TypeKind::kTuple: {
        if (n.kind != RNodeKind::kTuple ||
            n.fields.size() != tn.fields.size()) {
          return TypeError("tuple shape mismatch in phi");
        }
        std::vector<std::pair<Symbol, ValueId>> fields;
        for (size_t i = 0; i < tn.fields.size(); ++i) {
          if (n.fields[i].first != tn.fields[i].first) {
            return TypeError("tuple attribute mismatch in phi");
          }
          IQL_ASSIGN_OR_RETURN(
              ValueId c, build(n.fields[i].second, tn.fields[i].second));
          fields.emplace_back(n.fields[i].first, c);
        }
        return values.Tuple(std::move(fields));
      }
      case TypeKind::kSet: {
        if (n.kind != RNodeKind::kSet) {
          return TypeError("expected a set in phi");
        }
        std::vector<ValueId> elems;
        for (RNodeId child : n.elems) {
          IQL_ASSIGN_OR_RETURN(ValueId c, build(child, tn.children[0]));
          elems.push_back(c);
        }
        return values.Set(std::move(elems));
      }
      default:
        return InternalError("non-v-type in phi");
    }
  };
  for (const auto& [cls, roots] : v.classes) {
    TypeId t = vschema->ClassType(cls);
    for (RNodeId r : roots) {
      IQL_ASSIGN_OR_RETURN(ValueId val, build(r, t));
      Oid o = f.at(std::make_pair(cls, r));
      if (vschema->IsSetValuedClass(cls)) {
        for (ValueId e : values.node(val).elems) {
          IQL_RETURN_IF_ERROR(out.AddToSetOid(o, e));
        }
      } else {
        IQL_RETURN_IF_ERROR(out.SetOidValue(o, val));
      }
    }
  }
  return out;
}

bool VInstanceEqual(const VInstance& a, const VInstance& b) {
  // Merge both graphs into one and compare per-class block sets.
  if (a.classes.size() != b.classes.size()) return false;
  TermGraph merged(a.graph.symbols());
  std::map<RNodeId, RNodeId> map_a, map_b;
  std::map<Symbol, std::set<RNodeId>> roots_a, roots_b;
  for (const auto& [cls, roots] : a.classes) {
    for (RNodeId r : roots) {
      roots_a[cls].insert(CopySubgraph(&merged, a.graph, r, &map_a));
    }
  }
  for (const auto& [cls, roots] : b.classes) {
    for (RNodeId r : roots) {
      roots_b[cls].insert(CopySubgraph(&merged, b.graph, r, &map_b));
    }
  }
  std::vector<uint32_t> block = BisimulationBlocks(merged);
  for (const auto& [cls, ra] : roots_a) {
    auto it = roots_b.find(cls);
    if (it == roots_b.end()) return false;
    std::set<uint32_t> ba, bb;
    for (RNodeId r : ra) ba.insert(block[r]);
    for (RNodeId r : it->second) bb.insert(block[r]);
    if (ba != bb) return false;
  }
  return true;
}

}  // namespace iqlkit
