#include "analysis/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <string>

namespace iqlkit {

namespace {

// The line of `source` containing byte `offset`, without its newline.
std::string_view LineAt(std::string_view source, int offset) {
  if (offset < 0 || static_cast<size_t>(offset) > source.size()) return {};
  size_t pos = static_cast<size_t>(offset);
  size_t begin = source.rfind('\n', pos == 0 ? 0 : pos - 1);
  begin = (begin == std::string_view::npos || pos == 0) ? 0 : begin + 1;
  // rfind can land on the newline *at* pos-1 when offset starts a line.
  if (begin > pos) begin = pos;
  size_t end = source.find('\n', pos);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(begin, end - begin);
}

void AppendExcerpt(std::string* out, std::string_view source,
                   const SourceSpan& span) {
  if (!span.valid() || span.offset < 0 ||
      static_cast<size_t>(span.offset) > source.size()) {
    return;
  }
  std::string_view line = LineAt(source, span.offset);
  std::string number = std::to_string(span.line);
  std::string gutter(number.size() + 2, ' ');
  *out += "  " + number + " | ";
  // Tabs would misalign the caret column; render them as single spaces.
  for (char c : line) out->push_back(c == '\t' ? ' ' : c);
  *out += "\n  " + gutter + "| ";
  int col = span.column > 0 ? span.column : 1;
  for (int i = 1; i < col; ++i) out->push_back(' ');
  // Clamp the caret run to the excerpted line; multi-line spans (whole
  // rules) underline from the start column to the end of the first line.
  int line_remaining = static_cast<int>(line.size()) - (col - 1);
  int run = std::max(1, std::min(span.length, line_remaining));
  out->push_back('^');
  for (int i = 1; i < run; ++i) out->push_back('~');
  out->push_back('\n');
}

void AppendHeader(std::string* out, std::string_view filename,
                  const SourceSpan& span, std::string_view label,
                  std::string_view message, std::string_view code) {
  if (!filename.empty()) {
    *out += filename;
    *out += ':';
  }
  if (span.valid()) {
    *out += std::to_string(span.line) + ":" + std::to_string(span.column) +
            ":";
  }
  if (!out->empty() && out->back() == ':') *out += ' ';
  *out += label;
  *out += ": ";
  *out += message;
  if (!code.empty()) {
    *out += " [";
    *out += code;
    *out += ']';
  }
  *out += '\n';
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonSpan(std::string* out, const SourceSpan& span) {
  *out += "\"line\": " + std::to_string(span.line) +
          ", \"column\": " + std::to_string(span.column) +
          ", \"offset\": " + std::to_string(span.offset) +
          ", \"length\": " + std::to_string(span.length);
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kHint: return "hint";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

Diagnostic& DiagnosticSink::Report(Diagnostic d) {
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

Diagnostic& DiagnosticSink::Error(std::string code, SourceSpan span,
                                  std::string message) {
  return Report(Diagnostic{std::move(code), Severity::kError, span,
                           std::move(message), {}, std::nullopt});
}

Diagnostic& DiagnosticSink::Warning(std::string code, SourceSpan span,
                                    std::string message) {
  return Report(Diagnostic{std::move(code), Severity::kWarning, span,
                           std::move(message), {}, std::nullopt});
}

Diagnostic& DiagnosticSink::Hint(std::string code, SourceSpan span,
                                 std::string message) {
  return Report(Diagnostic{std::move(code), Severity::kHint, span,
                           std::move(message), {}, std::nullopt});
}

size_t DiagnosticSink::count(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::optional<Severity> DiagnosticSink::max_severity() const {
  std::optional<Severity> max;
  for (const Diagnostic& d : diagnostics_) {
    if (!max.has_value() || d.severity > *max) max = d.severity;
  }
  return max;
}

std::string RenderText(const Diagnostic& diagnostic, std::string_view source,
                       std::string_view filename) {
  std::string out;
  AppendHeader(&out, filename, diagnostic.span,
               SeverityName(diagnostic.severity), diagnostic.message,
               diagnostic.code);
  AppendExcerpt(&out, source, diagnostic.span);
  for (const DiagnosticNote& note : diagnostic.notes) {
    AppendHeader(&out, filename, note.span, "note", note.message, "");
    AppendExcerpt(&out, source, note.span);
  }
  if (diagnostic.fixit.has_value()) {
    AppendHeader(&out, filename, diagnostic.fixit->span, "fix-it",
                 diagnostic.fixit->replacement.empty()
                     ? "delete this"
                     : "replace with '" + diagnostic.fixit->replacement + "'",
                 "");
  }
  return out;
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       std::string_view source, std::string_view filename) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += RenderText(d, source, filename);
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       std::string_view filename) {
  std::string out = "{\"file\": ";
  AppendJsonString(&out, filename);
  out += ", \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ", ";
    first = false;
    out += "{\"code\": ";
    AppendJsonString(&out, d.code);
    out += ", \"severity\": ";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ", ";
    AppendJsonSpan(&out, d.span);
    out += ", \"message\": ";
    AppendJsonString(&out, d.message);
    if (!d.notes.empty()) {
      out += ", \"notes\": [";
      bool first_note = true;
      for (const DiagnosticNote& note : d.notes) {
        if (!first_note) out += ", ";
        first_note = false;
        out += "{";
        AppendJsonSpan(&out, note.span);
        out += ", \"message\": ";
        AppendJsonString(&out, note.message);
        out += "}";
      }
      out += "]";
    }
    if (d.fixit.has_value()) {
      out += ", \"fixit\": {";
      AppendJsonSpan(&out, d.fixit->span);
      out += ", \"replacement\": ";
      AppendJsonString(&out, d.fixit->replacement);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string OneLine(const Diagnostic& diagnostic, std::string_view filename) {
  std::string out;
  AppendHeader(&out, filename, diagnostic.span,
               SeverityName(diagnostic.severity), diagnostic.message,
               diagnostic.code);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

Status ToStatus(const Diagnostic& diagnostic, StatusCode code) {
  return Status(code, OneLine(diagnostic));
}

}  // namespace iqlkit
