#ifndef IQLKIT_ANALYSIS_DIAGNOSTIC_H_
#define IQLKIT_ANALYSIS_DIAGNOSTIC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/source_span.h"
#include "base/status.h"

namespace iqlkit {

// The common diagnostic surface for every static check in the system:
// lexer/parser errors, schema validation, type checking, the §5
// restriction analyses, the iqlint analyzer passes, and the datalog
// engine's safety checks all report through this type instead of bare
// Status strings, so positions, notes, and fix-its survive to the UI.
//
// Code registry (catalogued with triggering programs in docs/LANGUAGE.md):
//   E001  lexical error                      E002  syntax error
//   E003  schema validation error            E004  type error (§3.1)
//   E005  datalog safety violation           E006  nesting depth exceeded
//   W001  unconstrained rule variable        W002  invention in recursion
//   W003  program leaves IQLpr (§5)          W004  unused var declaration
//   W005  dead rule                          W006  statically empty type
//   W007  negation on same-stage predicate
//   O001  cross-product join (optimizer hint)
//   L001  dead/redundant IL instruction       L002  unbindable probe key
//   L003  statically empty rule body          L004  IL verifier violation
// (L-series codes come from the IL pipeline, iql/ilopt.h; iqlint emits
// them under --il.)
enum class Severity : uint8_t {
  kHint = 0,     // optimizer / style observation; never fails a build
  kWarning = 1,  // probable bug or lost guarantee; program still runs
  kError = 2,    // the program is rejected
};

// "hint", "warning", "error".
std::string_view SeverityName(Severity severity);

// A secondary location attached to a diagnostic, e.g. one member of the
// recursive SCC a W002 reports, or the defining rule a W007 points back to.
struct DiagnosticNote {
  SourceSpan span;  // may be invalid (no position)
  std::string message;
};

// A machine-applicable suggested edit: replace `span` with `replacement`
// (empty replacement = delete).
struct FixIt {
  SourceSpan span;
  std::string replacement;
};

struct Diagnostic {
  std::string code;  // "W002", "E004", ...
  Severity severity = Severity::kWarning;
  SourceSpan span;
  std::string message;
  std::vector<DiagnosticNote> notes;
  std::optional<FixIt> fixit;
};

// Collects diagnostics in report order. Producers call Report (or the
// severity shorthands, which return the stored diagnostic for attaching
// notes); consumers render or inspect the vector.
class DiagnosticSink {
 public:
  Diagnostic& Report(Diagnostic d);
  Diagnostic& Error(std::string code, SourceSpan span, std::string message);
  Diagnostic& Warning(std::string code, SourceSpan span, std::string message);
  Diagnostic& Hint(std::string code, SourceSpan span, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }
  size_t count(Severity severity) const;
  // Highest severity reported, or nullopt when empty.
  std::optional<Severity> max_severity() const;
  void clear() { diagnostics_.clear(); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

// Renders diagnostics clang-style, with a source-line excerpt and caret:
//
//   prog.iql:14:3: warning: oid invention inside a recursive SCC [W002]
//      14 |   R2(X, Y, z) :- R1(X), R1(Y).
//         |   ^~~~~~~~~~~
//   prog.iql:17:3: note: 'R1' is derived from 'P' here
//
// Spans outside `source` (or invalid ones) degrade to the header line.
std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       std::string_view source, std::string_view filename);

// One diagnostic, same format.
std::string RenderText(const Diagnostic& diagnostic, std::string_view source,
                       std::string_view filename);

// Renders `{"file": ..., "diagnostics": [...]}` with stable key order.
// Each entry carries code/severity/line/column/offset/length/message plus
// notes and fixit when present.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       std::string_view filename);

// "prog.iql:14:3: warning: message [W002]" -- the headline only, for
// embedding a diagnostic in a Status message or log line.
std::string OneLine(const Diagnostic& diagnostic,
                    std::string_view filename = "");

// Converts a diagnostic to a Status carrying the headline, so legacy
// Status-returning paths (datalog::Evaluate, TypeCheck) stay compatible
// while their errors are built as structured diagnostics.
Status ToStatus(const Diagnostic& diagnostic, StatusCode code);

}  // namespace iqlkit

#endif  // IQLKIT_ANALYSIS_DIAGNOSTIC_H_
