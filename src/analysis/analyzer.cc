#include "analysis/analyzer.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "iql/restrict.h"
#include "iql/typecheck.h"
#include "model/stats.h"
#include "model/type.h"
#include "model/type_algebra.h"

namespace iqlkit {

namespace {

// The head predicate node ("leftmost symbol"): the relation or class name
// of a membership head, or the class of x for x^-heads. Mirrors the
// dependency-graph construction of restrict.cc (§5).
Symbol HeadNodeOf(Universe* universe, const Program& program,
                  const Rule& rule) {
  const Term& lhs = program.term(rule.head.lhs);
  if (lhs.kind == Term::Kind::kRelName ||
      lhs.kind == Term::Kind::kClassName) {
    return lhs.name;
  }
  IQL_CHECK(lhs.kind == Term::Kind::kDeref);
  const TypeNode& t = universe->types().node(rule.var_types.at(lhs.name));
  IQL_CHECK(t.kind == TypeKind::kClass);
  return t.class_name;
}

void CollectPredicates(const Program& program, TermId id,
                       std::set<Symbol>* out) {
  std::vector<TermId> stack = {id};
  while (!stack.empty()) {
    const Term& term = program.term(stack.back());
    stack.pop_back();
    if (term.kind == Term::Kind::kRelName ||
        term.kind == Term::Kind::kClassName) {
      out->insert(term.name);
    }
    for (const auto& [attr, child] : term.fields) stack.push_back(child);
    for (TermId child : term.elems) stack.push_back(child);
  }
}

// Per-rule slice of the stage dependency graph G(Gamma): `sources` are the
// body predicate names plus the classes in body-variable types; `targets`
// are the head node plus the classes of invented variables.
struct RuleInfo {
  const Rule* rule = nullptr;
  std::set<Symbol> sources;
  std::set<Symbol> targets;
  std::set<Symbol> body_vars;
};

std::vector<RuleInfo> BuildStageInfos(Universe* universe,
                                      const Program& program,
                                      const std::vector<Rule>& stage) {
  std::vector<RuleInfo> infos;
  infos.reserve(stage.size());
  for (const Rule& rule : stage) {
    RuleInfo info;
    info.rule = &rule;
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kChoose) continue;
      program.CollectVars(lit, &info.body_vars);
      CollectPredicates(program, lit.lhs, &info.sources);
      CollectPredicates(program, lit.rhs, &info.sources);
    }
    for (Symbol v : info.body_vars) {
      universe->types().CollectClasses(rule.var_types.at(v), &info.sources);
    }
    info.targets.insert(HeadNodeOf(universe, program, rule));
    for (Symbol v : rule.invented_vars) {
      const TypeNode& t = universe->types().node(rule.var_types.at(v));
      info.targets.insert(t.class_name);
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

// Tarjan strongly connected components over the stage graph. A component
// is *cyclic* when it has more than one member or a self-loop.
struct SccResult {
  std::map<Symbol, int> component;
  std::vector<std::vector<Symbol>> members;
  std::vector<bool> cyclic;
};

SccResult FindSccs(const std::map<Symbol, std::set<Symbol>>& edges) {
  SccResult result;
  std::map<Symbol, int> index, lowlink;
  std::vector<Symbol> stack;
  std::map<Symbol, bool> on_stack;
  int next_index = 0;
  std::function<void(Symbol)> strongconnect = [&](Symbol v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    auto it = edges.find(v);
    if (it != edges.end()) {
      for (Symbol w : it->second) {
        if (!index.count(w)) {
          strongconnect(w);
          lowlink[v] = std::min(lowlink[v], lowlink[w]);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
    }
    if (lowlink[v] == index[v]) {
      int comp = static_cast<int>(result.members.size());
      result.members.emplace_back();
      Symbol w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        result.component[w] = comp;
        result.members[comp].push_back(w);
      } while (w != v);
    }
  };
  std::set<Symbol> nodes;
  for (const auto& [src, dsts] : edges) {
    nodes.insert(src);
    nodes.insert(dsts.begin(), dsts.end());
  }
  for (Symbol n : nodes) {
    if (!index.count(n)) strongconnect(n);
  }
  result.cyclic.assign(result.members.size(), false);
  for (size_t c = 0; c < result.members.size(); ++c) {
    if (result.members[c].size() > 1) {
      result.cyclic[c] = true;
      continue;
    }
    Symbol only = result.members[c][0];
    auto it = edges.find(only);
    result.cyclic[c] = it != edges.end() && it->second.count(only) > 0;
  }
  return result;
}

// Is the (intersection-free, normalized) type uninhabited? Set types are
// always inhabited (by the empty set), classes only emptily so at runtime,
// never statically.
bool StaticallyEmpty(TypePool* pool, TypeId t) {
  const TypeNode& n = pool->node(t);
  switch (n.kind) {
    case TypeKind::kEmpty:
      return true;
    case TypeKind::kBase:
    case TypeKind::kClass:
    case TypeKind::kSet:
      return false;
    case TypeKind::kTuple:
      for (const auto& [attr, ft] : n.fields) {
        if (StaticallyEmpty(pool, ft)) return true;
      }
      return false;
    case TypeKind::kUnion:
    case TypeKind::kIntersect:
      for (TypeId m : n.children) {
        if (!StaticallyEmpty(pool, m)) return false;
      }
      return true;
  }
  return false;
}

// The span of the first body literal mentioning `v`, else the rule's.
SourceSpan VarSpan(const Program& program, const Rule& rule, Symbol v) {
  for (const Literal& lit : rule.body) {
    std::set<Symbol> vars;
    program.CollectVars(lit, &vars);
    if (vars.count(v)) return lit.span;
  }
  return rule.span;
}

std::string RuleLabel(const Rule& rule) {
  return "rule " + std::to_string(rule.index + 1) + " of stage " +
         std::to_string(rule.stage + 1);
}

// ---- passes ---------------------------------------------------------------

// W001: a body variable constrained only by negative literals and
// inequalities ranges over the whole (infinite) domain.
void CheckUnsafeVars(Universe* universe, const Program& program,
                     DiagnosticSink* sink) {
  for (const Rule* rule : program.AllRules()) {
    std::set<Symbol> body_vars, positive_vars;
    for (const Literal& lit : rule->body) {
      if (lit.kind == Literal::Kind::kChoose) continue;
      program.CollectVars(lit, &body_vars);
      if (lit.positive) program.CollectVars(lit, &positive_vars);
    }
    for (Symbol v : body_vars) {
      if (positive_vars.count(v)) continue;
      sink->Warning(
          "W001", VarSpan(program, *rule, v),
          "variable '" + std::string(universe->Name(v)) + "' in " +
              RuleLabel(*rule) +
              " occurs only in negative literals or inequalities, so "
              "nothing generates its bindings");
    }
  }
}

// W002: oid invention inside a recursive SCC of the stage dependency
// graph -- the pattern Theorem 5.4 forbids because the inflationary
// fixpoint can mint fresh oids forever.
void CheckInventionInRecursion(Universe* universe,
                               const std::vector<std::vector<RuleInfo>>& infos,
                               DiagnosticSink* sink) {
  for (const auto& stage_infos : infos) {
    std::map<Symbol, std::set<Symbol>> edges;
    for (const RuleInfo& info : stage_infos) {
      for (Symbol src : info.sources) {
        for (Symbol dst : info.targets) edges[src].insert(dst);
      }
    }
    SccResult sccs = FindSccs(edges);
    for (const RuleInfo& info : stage_infos) {
      if (info.rule->invented_vars.empty()) continue;
      // The invention feeds back into itself iff some body source and some
      // target share a cyclic SCC.
      int cycle_comp = -1;
      for (Symbol s : info.sources) {
        auto sc = sccs.component.find(s);
        if (sc == sccs.component.end() || !sccs.cyclic[sc->second]) continue;
        for (Symbol t : info.targets) {
          auto tc = sccs.component.find(t);
          if (tc != sccs.component.end() && tc->second == sc->second) {
            cycle_comp = sc->second;
            break;
          }
        }
        if (cycle_comp >= 0) break;
      }
      if (cycle_comp < 0) continue;
      std::string invented;
      for (Symbol v : info.rule->invented_vars) {
        if (!invented.empty()) invented += ", ";
        invented += "'";
        invented += universe->Name(v);
        invented += "'";
      }
      Diagnostic& d = sink->Warning(
          "W002", info.rule->span,
          RuleLabel(*info.rule) + " invents oids (" + invented +
              ") inside a recursive cycle; each round of the inflationary "
              "fixpoint can mint fresh oids, so evaluation may not "
              "terminate (§5)");
      std::vector<Symbol> members = sccs.members[cycle_comp];
      std::sort(members.begin(), members.end(), [&](Symbol a, Symbol b) {
        return universe->Name(a) < universe->Name(b);
      });
      for (Symbol m : members) {
        const Rule* definer = nullptr;
        for (const RuleInfo& other : stage_infos) {
          if (other.targets.count(m)) {
            definer = other.rule;
            break;
          }
        }
        DiagnosticNote note;
        note.span = definer != nullptr ? definer->span : SourceSpan{};
        note.message = "'";
        note.message += universe->Name(m);
        note.message += "' is part of the recursive cycle";
        if (definer != nullptr) note.message += ", derived here";
        d.notes.push_back(std::move(note));
      }
      // Static analysis can only warn; the runtime limits are what turn
      // this divergence into a clean, rolled-back error.
      DiagnosticNote guard;
      guard.message =
          "if this divergence is real, the evaluation governor catches it: "
          "ResourceLimits::max_invented_oids / max_steps_per_stage bound "
          "the run (iqlsh: --max-steps, --timeout, --max-memory), and a "
          "trip rolls the instance back to the last completed step";
      d.notes.push_back(std::move(guard));
    }
  }
}

// W003: the program leaves IQLpr (Definition 5.3), losing the Theorem 5.4
// PTIME guarantee. Reported per offending rule / stage, with the IQLrr
// verdict as a note.
void CheckRestrictions(Universe* universe, const Program& program,
                       const std::vector<std::vector<RuleInfo>>& infos,
                       DiagnosticSink* sink) {
  for (size_t s = 0; s < program.stages.size(); ++s) {
    const auto& stage = program.stages[s];
    for (const Rule& rule : stage) {
      if (IsPtimeRestrictedRule(universe, program, rule)) continue;
      Diagnostic& d = sink->Warning(
          "W003", rule.span,
          RuleLabel(rule) +
              " is not ptime-restricted (Definition 5.1), so the program "
              "leaves IQLpr and the PTIME guarantee of Theorem 5.4");
      if (!IsRangeRestrictedRule(universe, program, rule)) {
        d.notes.push_back(
            {SourceSpan{},
             "the rule is not range-restricted either (Definition 5.2), "
             "so the program also leaves IQLrr"});
      }
    }
    if (IsInventionFreeStage(stage) ||
        IsRecursionFreeStage(universe, program, stage)) {
      continue;
    }
    // Uncontrolled stage: report at the first inventing rule.
    for (const RuleInfo& info : infos[s]) {
      if (info.rule->invented_vars.empty()) continue;
      sink->Warning(
          "W003", info.rule->span,
          "stage " + std::to_string(s + 1) +
              " is neither recursion-free nor invention-free, so the "
              "program leaves IQLpr (Definition 5.3)");
      break;
    }
  }
}

// W004: a `var x: t;` declaration no rule uses.
void CheckUnusedDeclarations(Universe* universe, const Program& program,
                             DiagnosticSink* sink) {
  std::set<Symbol> used;
  for (const Rule* rule : program.AllRules()) {
    program.CollectVars(rule->head, &used);
    for (const Literal& lit : rule->body) program.CollectVars(lit, &used);
  }
  for (const auto& [v, t] : program.declared_var_types) {
    if (used.count(v)) continue;
    SourceSpan span;
    auto it = program.declared_var_spans.find(v);
    if (it != program.declared_var_spans.end()) span = it->second;
    Diagnostic& d = sink->Warning(
        "W004", span,
        "declared variable '" + std::string(universe->Name(v)) +
            "' is never used");
    if (span.valid()) d.fixit = FixIt{span, ""};
  }
}

// W005: a rule whose derivations cannot reach any declared output.
void CheckDeadRules(Universe* universe,
                    const std::vector<std::vector<RuleInfo>>& infos,
                    const std::vector<std::string>& output_names,
                    DiagnosticSink* sink) {
  if (output_names.empty()) return;
  std::set<Symbol> needed;
  for (const std::string& name : output_names) {
    needed.insert(universe->Intern(name));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& stage_infos : infos) {
      for (const RuleInfo& info : stage_infos) {
        bool feeds = false;
        for (Symbol t : info.targets) {
          if (needed.count(t)) {
            feeds = true;
            break;
          }
        }
        if (!feeds) continue;
        for (Symbol src : info.sources) {
          if (needed.insert(src).second) changed = true;
        }
      }
    }
  }
  for (const auto& stage_infos : infos) {
    for (const RuleInfo& info : stage_infos) {
      bool live = false;
      for (Symbol t : info.targets) {
        if (needed.count(t)) {
          live = true;
          break;
        }
      }
      if (live) continue;
      std::string targets;
      for (Symbol t : info.targets) {
        if (!targets.empty()) targets += ", ";
        targets += "'";
        targets += universe->Name(t);
        targets += "'";
      }
      sink->Warning("W005", info.rule->span,
                    RuleLabel(*info.rule) + " is dead: it derives " +
                        targets +
                        ", which cannot reach any declared output");
    }
  }
}

// W006 (program half): declared variables of a statically empty type.
void CheckEmptyVarTypes(Universe* universe, const Program& program,
                        DiagnosticSink* sink) {
  TypePool& types = universe->types();
  for (const auto& [v, t] : program.declared_var_types) {
    if (t == types.Empty()) continue;  // literal `empty` is intentional
    if (!StaticallyEmpty(&types, NormalizeDisjoint(&types, t))) continue;
    SourceSpan span;
    auto it = program.declared_var_spans.find(v);
    if (it != program.declared_var_spans.end()) span = it->second;
    sink->Warning("W006", span,
                  "variable '" + std::string(universe->Name(v)) +
                      "' has type " + types.ToString(t) +
                      ", which is empty under every disjoint oid "
                      "assignment, so it can never be bound");
  }
}

// W007: negating a predicate that the same stage derives. Inflationary
// evaluation freezes each literal's truth per round, so the negation is
// order-sensitive: it may hold early in the fixpoint and fail later.
void CheckSameStageNegation(Universe* universe, const Program& program,
                            const std::vector<std::vector<RuleInfo>>& infos,
                            DiagnosticSink* sink) {
  for (const auto& stage_infos : infos) {
    std::set<Symbol> derived;
    for (const RuleInfo& info : stage_infos) {
      derived.insert(info.targets.begin(), info.targets.end());
    }
    for (const RuleInfo& info : stage_infos) {
      for (const Literal& lit : info.rule->body) {
        if (lit.kind != Literal::Kind::kMembership || lit.positive) continue;
        const Term& lhs = program.term(lit.lhs);
        if (lhs.kind != Term::Kind::kRelName &&
            lhs.kind != Term::Kind::kClassName) {
          continue;
        }
        if (!derived.count(lhs.name)) continue;
        const Rule* definer = nullptr;
        for (const RuleInfo& other : stage_infos) {
          if (other.targets.count(lhs.name)) {
            definer = other.rule;
            break;
          }
        }
        std::string message = "negation of '";
        message += universe->Name(lhs.name);
        message +=
            "', which the same stage derives; under inflationary "
            "evaluation the result depends on derivation order "
            "(separate the stages with ';')";
        Diagnostic& d = sink->Warning("W007", lit.span, std::move(message));
        if (definer != nullptr) {
          std::string note = "'";
          note += universe->Name(lhs.name);
          note += "' is derived in the same stage here";
          d.notes.push_back({definer->span, std::move(note)});
        }
      }
    }
  }
}

// O001: a rule whose greedy join schedule is forced through a generator
// sharing no variable with anything bound so far -- an unavoidable cross
// product. Mirrors the scheduler simulation of ExplainSchedule (eval.cc).
void CheckCrossProducts(Universe* universe, const Program& program,
                        const AnalyzerOptions& options,
                        DiagnosticSink* sink) {
  std::optional<CardinalityEstimator> estimator;
  if (options.input != nullptr) estimator.emplace(options.input);
  for (const Rule* rule : program.AllRules()) {
    struct Generator {
      const Literal* lit;
      std::set<Symbol> vars;
    };
    std::vector<Generator> remaining;
    std::vector<const Literal*> equalities;
    for (const Literal& lit : rule->body) {
      if (lit.kind == Literal::Kind::kChoose || !lit.positive) continue;
      if (lit.kind == Literal::Kind::kEquality) {
        equalities.push_back(&lit);
        continue;
      }
      Generator g;
      g.lit = &lit;
      program.CollectVars(lit, &g.vars);
      remaining.push_back(std::move(g));
    }
    std::set<Symbol> bound;
    auto propagate = [&]() {
      bool changed = true;
      while (changed) {
        changed = false;
        for (const Literal* eq : equalities) {
          std::set<Symbol> lv, rv;
          program.CollectVars(eq->lhs, &lv);
          program.CollectVars(eq->rhs, &rv);
          auto covered = [&](const std::set<Symbol>& vs) {
            return std::all_of(vs.begin(), vs.end(), [&](Symbol v) {
              return bound.count(v) > 0;
            });
          };
          auto absorb = [&](const std::set<Symbol>& vs) {
            for (Symbol v : vs) {
              if (bound.insert(v).second) changed = true;
            }
          };
          if (covered(lv)) absorb(rv);
          if (covered(rv)) absorb(lv);
        }
      }
    };
    while (!remaining.empty()) {
      size_t pick = remaining.size();
      for (size_t i = 0; i < remaining.size(); ++i) {
        const auto& vars = remaining[i].vars;
        bool connected =
            bound.empty() || vars.empty() ||
            std::any_of(vars.begin(), vars.end(), [&](Symbol v) {
              return bound.count(v) > 0;
            });
        if (connected) {
          pick = i;
          break;
        }
      }
      if (pick == remaining.size()) {
        // Every remaining generator is disjoint from the bound variables.
        pick = 0;
        const Literal* lit = remaining[0].lit;
        Diagnostic& d = sink->Hint(
            "O001", lit->span,
            "this literal shares no variable with the literals already "
            "joined in " + RuleLabel(*rule) +
                "; evaluation enumerates a full cross product");
        if (estimator.has_value()) {
          const Term& lhs = program.term(lit->lhs);
          size_t size = 0;
          bool known = false;
          if (lhs.kind == Term::Kind::kRelName) {
            size = estimator->RelationSize(lhs.name);
            known = true;
          } else if (lhs.kind == Term::Kind::kClassName) {
            size = estimator->ClassSize(lhs.name);
            known = true;
          }
          if (known) {
            d.notes.push_back(
                {SourceSpan{},
                 "'" + std::string(universe->Name(lhs.name)) + "' has " +
                     std::to_string(size) +
                     " facts on the provided instance"});
          }
        }
      }
      bound.insert(remaining[pick].vars.begin(), remaining[pick].vars.end());
      remaining.erase(remaining.begin() + static_cast<long>(pick));
      propagate();
    }
  }
}

}  // namespace

std::set<std::string> ParseLintPragmas(std::string_view source) {
  std::set<std::string> codes;
  static constexpr std::string_view kMarker = "iqlint:";
  static constexpr std::string_view kAllow = "allow(";
  size_t pos = 0;
  while ((pos = source.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    while (pos < source.size() &&
           std::isspace(static_cast<unsigned char>(source[pos]))) {
      ++pos;
    }
    if (source.compare(pos, kAllow.size(), kAllow) != 0) continue;
    pos += kAllow.size();
    std::string current;
    while (pos < source.size() && source[pos] != ')' &&
           source[pos] != '\n') {
      char c = source[pos++];
      if (std::isalnum(static_cast<unsigned char>(c))) {
        current.push_back(c);
      } else {
        if (!current.empty()) codes.insert(current);
        current.clear();
      }
    }
    if (!current.empty()) codes.insert(current);
  }
  return codes;
}

void AnalyzeProgram(Universe* universe, const Schema& schema,
                    const Program& program,
                    const std::vector<std::string>& output_names,
                    const AnalyzerOptions& options, DiagnosticSink* sink) {
  (void)schema;
  IQL_CHECK(program.type_checked)
      << "AnalyzeProgram requires a type-checked program";
  std::vector<std::vector<RuleInfo>> infos;
  infos.reserve(program.stages.size());
  for (const auto& stage : program.stages) {
    infos.push_back(BuildStageInfos(universe, program, stage));
  }
  CheckUnsafeVars(universe, program, sink);
  CheckInventionInRecursion(universe, infos, sink);
  CheckRestrictions(universe, program, infos, sink);
  CheckUnusedDeclarations(universe, program, sink);
  CheckDeadRules(universe, infos, output_names, sink);
  CheckEmptyVarTypes(universe, program, sink);
  CheckSameStageNegation(universe, program, infos, sink);
  if (options.hints) CheckCrossProducts(universe, program, options, sink);
}

void AnalyzeUnit(Universe* universe, const ParsedUnit& unit,
                 const AnalyzerOptions& options, DiagnosticSink* sink) {
  // W006 (schema half): declarations denoting statically empty types.
  TypePool& types = universe->types();
  auto check_decl = [&](Symbol name, TypeId t, std::string_view what) {
    if (t == kInvalidType || t == types.Empty()) return;
    if (!StaticallyEmpty(&types, NormalizeDisjoint(&types, t))) return;
    SourceSpan span;
    auto it = unit.decl_spans.find(name);
    if (it != unit.decl_spans.end()) span = it->second;
    sink->Warning("W006", span,
                  std::string(what) + " '" +
                      std::string(universe->Name(name)) + "' has type " +
                      types.ToString(t) +
                      ", which is empty under every disjoint oid "
                      "assignment (Proposition 2.2.1)");
  };
  for (Symbol r : unit.schema.relation_names()) {
    check_decl(r, unit.schema.RelationType(r), "relation");
  }
  for (Symbol p : unit.schema.class_names()) {
    check_decl(p, unit.schema.ClassType(p), "class");
  }
  if (unit.program.type_checked) {
    AnalyzeProgram(universe, unit.schema, unit.program, unit.output_names,
                   options, sink);
  }
}

void LintSource(Universe* universe, std::string_view source,
                const AnalyzerOptions& options, DiagnosticSink* sink) {
  DiagnosticSink local;
  Result<ParsedUnit> unit = ParseUnit(universe, source, &local);
  if (!unit.ok()) {
    // Lex/syntax failures already landed as E001/E002; anything else
    // (duplicate declarations, schema validation) surfaces here.
    if (local.empty()) {
      local.Error("E003", SourceSpan{}, unit.status().message());
    }
  } else {
    Status checked =
        TypeCheck(universe, unit.value().schema, &unit.value().program,
                  &local);
    (void)checked;  // reported through E004
    AnalyzeUnit(universe, unit.value(), options, &local);
  }
  std::set<std::string> allowed = ParseLintPragmas(source);
  std::vector<Diagnostic> diagnostics = local.diagnostics();
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     return a.span.column < b.span.column;
                   });
  for (Diagnostic& d : diagnostics) {
    if (allowed.count(d.code)) continue;
    sink->Report(std::move(d));
  }
}

}  // namespace iqlkit
