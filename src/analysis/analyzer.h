#ifndef IQLKIT_ANALYSIS_ANALYZER_H_
#define IQLKIT_ANALYSIS_ANALYZER_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "iql/ast.h"
#include "iql/parser.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

// The iqlint static analyzer: W-level program checks (W001-W007) plus
// O-level optimizer hints, layered on the span-carrying diagnostics of
// analysis/diagnostic.h. See that header for the code registry and
// docs/LANGUAGE.md for a catalogue with minimal triggering programs.
struct AnalyzerOptions {
  // Emit O-level optimizer hints (O001) in addition to warnings.
  bool hints = true;
  // When set, O001 notes include cardinality estimates from this instance.
  const Instance* input = nullptr;
};

// File-wide suppressions: every `# iqlint: allow(W002, W003)` comment in
// `source` contributes its codes to the returned set. LintSource applies
// these automatically; callers driving AnalyzeProgram directly can filter
// with the result themselves.
std::set<std::string> ParseLintPragmas(std::string_view source);

// Runs the analyzer passes over a *type-checked* program (TypeCheck fills
// the var_types/invented_vars the passes read). `output_names` feeds W005
// (dead rule); pass an empty vector when the program has no declared
// outputs, which disables that pass. Diagnostics are appended to `sink` in
// source order.
void AnalyzeProgram(Universe* universe, const Schema& schema,
                    const Program& program,
                    const std::vector<std::string>& output_names,
                    const AnalyzerOptions& options, DiagnosticSink* sink);

// AnalyzeProgram plus the schema-level pass (W006 on declarations). The
// program passes run only if unit.program.type_checked is set.
void AnalyzeUnit(Universe* universe, const ParsedUnit& unit,
                 const AnalyzerOptions& options, DiagnosticSink* sink);

// The full iqlint pipeline over one source buffer: lex, parse, validate,
// type check, analyze. Every problem lands in `sink` as a diagnostic
// (E001/E002 lex+syntax, E003 validation, E004 types, then the W/O
// passes), with `# iqlint: allow(...)` pragmas applied. The sink's
// max_severity() is the lint verdict.
void LintSource(Universe* universe, std::string_view source,
                const AnalyzerOptions& options, DiagnosticSink* sink);

}  // namespace iqlkit

#endif  // IQLKIT_ANALYSIS_ANALYZER_H_
