#include "transform/isomorphism.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"

namespace iqlkit {

namespace {

using ColorMap = std::unordered_map<Oid, uint64_t, OidHash>;

// Hashes an o-value's structure with oids replaced by their current colors
// (so isomorphic values under a color-respecting bijection hash equally).
uint64_t HashValueColored(const ValueStore& values, ValueId v,
                          const ColorMap& colors) {
  const ValueNode& n = values.node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return HashCombine(0x11, n.atom);
    case ValueKind::kOid: {
      auto it = colors.find(n.oid);
      return HashCombine(0x22, it == colors.end() ? 0 : it->second);
    }
    case ValueKind::kTuple: {
      uint64_t h = 0x33;
      for (const auto& [attr, child] : n.fields) {
        h = HashCombine(h, attr);
        h = HashCombine(h, HashValueColored(values, child, colors));
      }
      return h;
    }
    case ValueKind::kSet: {
      // Order-independent: sort the child hashes.
      std::vector<uint64_t> hs;
      hs.reserve(n.elems.size());
      for (ValueId child : n.elems) {
        hs.push_back(HashValueColored(values, child, colors));
      }
      std::sort(hs.begin(), hs.end());
      return HashRange(hs.begin(), hs.end(), 0x44);
    }
  }
  return 0;
}

// Iterated color refinement over an instance's oids.
ColorMap RefineColors(const Instance& inst) {
  const ValueStore& values = inst.universe()->values();
  ColorMap colors;
  std::set<Oid> oids = inst.Objects();
  for (Oid o : oids) {
    auto cls = inst.ClassOf(o);
    colors[o] = Mix64(cls.has_value() ? *cls + 1 : 0);
  }
  size_t rounds = oids.size() + 1;
  for (size_t round = 0; round < rounds; ++round) {
    // Occurrence signatures from relation facts.
    ColorMap occurrence;
    for (Symbol r : inst.schema().relation_names()) {
      for (ValueId v : inst.Relation(r)) {
        uint64_t fact_hash =
            HashCombine(Mix64(r + 17), HashValueColored(values, v, colors));
        std::set<Oid> in_fact;
        values.CollectOids(v, &in_fact);
        for (Oid o : in_fact) {
          // Commutative combine: a multiset signature over facts.
          occurrence[o] += Mix64(fact_hash);
        }
      }
    }
    ColorMap next;
    for (Oid o : oids) {
      uint64_t h = colors[o];
      auto nu = inst.ValueOf(o);
      h = HashCombine(h, nu.has_value()
                             ? HashValueColored(values, *nu, colors)
                             : 0x99);
      auto occ = occurrence.find(o);
      h = HashCombine(h, occ == occurrence.end() ? 0 : occ->second);
      next[o] = h;
    }
    // Stop when the partition no longer refines (count distinct colors).
    std::set<uint64_t> old_classes, new_classes;
    for (Oid o : oids) {
      old_classes.insert(colors[o]);
      new_classes.insert(next[o]);
    }
    bool stable = new_classes.size() == old_classes.size();
    colors = std::move(next);
    if (stable && round > 0) break;
  }
  return colors;
}

// Verifies that `map` (a full oid bijection a->b) maps a's ground facts
// exactly onto b's.
bool VerifyMapping(const Instance& a, const Instance& b,
                   const std::map<Oid, Oid>& map) {
  ValueStore& values = a.universe()->values();
  auto rename = [&](Oid o) {
    auto it = map.find(o);
    IQL_CHECK(it != map.end()) << "incomplete oid mapping";
    return it->second;
  };
  for (Symbol p : a.schema().class_names()) {
    const auto& ax = a.ClassExtent(p);
    const auto& bx = b.ClassExtent(p);
    if (ax.size() != bx.size()) return false;
    for (Oid o : ax) {
      Oid img = rename(o);
      if (!bx.count(img)) return false;
      auto av = a.ValueOf(o);
      auto bv = b.ValueOf(img);
      if (av.has_value() != bv.has_value()) return false;
      if (av.has_value() && values.RewriteOids(*av, rename) != *bv) {
        return false;
      }
    }
  }
  for (Symbol r : a.schema().relation_names()) {
    const auto& ar = a.Relation(r);
    const auto& br = b.Relation(r);
    if (ar.size() != br.size()) return false;
    for (ValueId v : ar) {
      if (!br.count(values.RewriteOids(v, rename))) return false;
    }
  }
  return true;
}

}  // namespace

std::optional<std::map<Oid, Oid>> FindOIsomorphism(const Instance& a,
                                                   const Instance& b) {
  IQL_CHECK(a.universe() == b.universe())
      << "isomorphism search requires a shared universe";
  // Schema compatibility and cardinality pre-checks.
  if (a.schema().relation_names() != b.schema().relation_names() ||
      a.schema().class_names() != b.schema().class_names()) {
    return std::nullopt;
  }
  std::set<Oid> a_oids = a.Objects();
  std::set<Oid> b_oids = b.Objects();
  if (a_oids.size() != b_oids.size()) return std::nullopt;
  for (Symbol p : a.schema().class_names()) {
    if (a.ClassExtent(p).size() != b.ClassExtent(p).size()) {
      return std::nullopt;
    }
  }
  for (Symbol r : a.schema().relation_names()) {
    if (a.Relation(r).size() != b.Relation(r).size()) return std::nullopt;
  }
  ColorMap ca = RefineColors(a);
  ColorMap cb = RefineColors(b);
  // Candidate sets by color.
  std::unordered_map<uint64_t, std::vector<Oid>> by_color_b;
  for (Oid o : b_oids) by_color_b[cb[o]].push_back(o);
  std::vector<Oid> order(a_oids.begin(), a_oids.end());
  // Assign scarce colors first.
  std::stable_sort(order.begin(), order.end(), [&](Oid x, Oid y) {
    return by_color_b[ca[x]].size() < by_color_b[ca[y]].size();
  });
  std::map<Oid, Oid> mapping;
  std::set<Oid> used;
  std::function<bool(size_t)> assign = [&](size_t i) -> bool {
    if (i == order.size()) return VerifyMapping(a, b, mapping);
    Oid o = order[i];
    auto it = by_color_b.find(ca[o]);
    if (it == by_color_b.end()) return false;
    for (Oid cand : it->second) {
      if (used.count(cand)) continue;
      if (a.ClassOf(o) != b.ClassOf(cand)) continue;
      if (a.ValueOf(o).has_value() != b.ValueOf(cand).has_value()) continue;
      mapping[o] = cand;
      used.insert(cand);
      if (assign(i + 1)) return true;
      mapping.erase(o);
      used.erase(cand);
    }
    return false;
  };
  if (!assign(0)) return std::nullopt;
  return mapping;
}

bool OIsomorphic(const Instance& a, const Instance& b) {
  return FindOIsomorphism(a, b).has_value();
}

Instance RenameInstance(const Instance& instance,
                        const std::function<Oid(Oid)>& oid_map,
                        const std::function<Symbol(Symbol)>& const_map) {
  Universe* u = instance.universe();
  ValueStore& values = u->values();
  Instance out(instance.schema_ptr(), u);
  for (Symbol p : instance.schema().class_names()) {
    for (Oid o : instance.ClassExtent(p)) {
      Oid img = oid_map(o);
      IQL_CHECK(out.AddOid(p, img).ok());
      auto v = instance.ValueOf(o);
      if (v.has_value()) {
        ValueId w = values.Rewrite(*v, oid_map, const_map);
        if (instance.schema().IsSetValuedClass(p)) {
          // Set-valued oids default to {} on AddOid; write elementwise.
          for (ValueId e : values.node(w).elems) {
            IQL_CHECK(out.AddToSetOid(img, e).ok());
          }
        } else {
          IQL_CHECK(out.SetOidValue(img, w).ok());
        }
      }
    }
  }
  for (Symbol r : instance.schema().relation_names()) {
    for (ValueId v : instance.Relation(r)) {
      IQL_CHECK(out.AddToRelation(r, values.Rewrite(v, oid_map, const_map))
                    .ok());
    }
  }
  return out;
}

Instance RenameOids(const Instance& instance,
                    const std::function<Oid(Oid)>& oid_map) {
  return RenameInstance(instance, oid_map, [](Symbol s) { return s; });
}

}  // namespace iqlkit
