#ifndef IQLKIT_TRANSFORM_TURING_H_
#define IQLKIT_TRANSFORM_TURING_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "iql/eval.h"
#include "model/universe.h"

namespace iqlkit {

// The constructive heart of IQL's completeness (Prop 4.2.2 and the
// Chandra-Harel tradition the paper builds on): arbitrary computations
// simulate in IQL because oid invention manufactures unbounded structure.
// This module compiles a deterministic Turing machine into a fixed IQL
// program in which
//   - *time points* are invented oids (one fresh T-oid per executed step,
//     chained by NextT -- the inflationary counter of the completeness
//     proofs), and
//   - *tape cells* are invented oids (the tape extends on demand in both
//     directions, exactly the "unbounded structured terms" the paper
//     credits invention with).
// A halting machine reaches the IQL fixpoint; a diverging machine hits
// the evaluator's budgets -- computational completeness means divergence
// is expressible too.
struct TuringMachine {
  struct Transition {
    std::string state;
    std::string read;        // tape symbol (the blank is "B")
    std::string next_state;
    std::string write;
    char move;               // 'L' or 'R'
  };

  std::string start_state;
  std::vector<std::string> accepting_states;
  std::vector<Transition> transitions;
};

struct TuringResult {
  bool accepted = false;
  size_t steps = 0;                     // executed machine steps
  std::vector<std::string> final_tape;  // blank-trimmed, left to right
};

// The fixed simulator source (schema + rules); independent of the machine,
// which arrives as Trans/Accepting facts.
std::string TuringSimulatorSource();

// Runs `tm` on `word` via the IQL simulator. The word may be empty (the
// head starts on a single blank cell). Budgets come from `options`; a
// non-halting machine surfaces as RESOURCE_EXHAUSTED.
Result<TuringResult> RunTuringMachine(Universe* universe,
                                      const TuringMachine& tm,
                                      const std::vector<std::string>& word,
                                      const EvalOptions& options = {});

}  // namespace iqlkit

#endif  // IQLKIT_TRANSFORM_TURING_H_
