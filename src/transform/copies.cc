#include "transform/copies.h"

#include <map>
#include <set>

#include "base/logging.h"
#include "transform/isomorphism.h"

namespace iqlkit {

Result<Schema> SchemaForCopies(Universe* universe, const Schema& base,
                               std::string_view copies_rel) {
  TypePool& types = universe->types();
  Schema out(universe);
  for (Symbol r : base.relation_names()) {
    IQL_RETURN_IF_ERROR(
        out.DeclareRelation(universe->Name(r), base.RelationType(r)));
  }
  std::vector<TypeId> classes;
  for (Symbol p : base.class_names()) {
    IQL_RETURN_IF_ERROR(
        out.DeclareClass(universe->Name(p), base.ClassType(p)));
    classes.push_back(types.Class(p));
  }
  if (classes.empty()) {
    return InvalidArgumentError(
        "schema-for-copies needs at least one class (Def 4.2.3 registers "
        "per-copy oid sets)");
  }
  IQL_RETURN_IF_ERROR(out.DeclareRelation(
      copies_rel, types.Set(types.Union(std::move(classes)))));
  IQL_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<Instance> MakeCopies(const Instance& instance,
                            std::shared_ptr<const Schema> copies_schema,
                            int n) {
  Universe* u = instance.universe();
  ValueStore& values = u->values();
  Symbol copies_rel = kInvalidSymbol;
  for (Symbol r : copies_schema->relation_names()) {
    if (!instance.schema().HasRelation(r)) {
      if (copies_rel != kInvalidSymbol) {
        return InvalidArgumentError(
            "copies schema adds more than one new relation");
      }
      copies_rel = r;
    }
  }
  if (copies_rel == kInvalidSymbol) {
    return InvalidArgumentError("copies schema lacks the copies relation");
  }
  Instance out(std::move(copies_schema), u);
  for (int k = 0; k < n; ++k) {
    // Fresh renaming for this copy.
    std::map<Oid, Oid> renaming;
    for (Oid o : instance.Objects()) renaming[o] = u->MintOid();
    Instance copy = RenameOids(
        instance, [&](Oid o) { return renaming.at(o); });
    IQL_RETURN_IF_ERROR(out.Absorb(copy));
    std::vector<ValueId> members;
    members.reserve(renaming.size());
    for (const auto& [from, to] : renaming) {
      members.push_back(values.OfOid(to));
    }
    IQL_RETURN_IF_ERROR(
        out.AddToRelation(copies_rel, values.Set(std::move(members))));
  }
  return out;
}

Result<std::vector<Instance>> SplitCopies(
    const Instance& with_copies, std::shared_ptr<const Schema> base_schema,
    std::string_view copies_rel_name) {
  Universe* u = with_copies.universe();
  const ValueStore& values = u->values();
  Symbol copies_rel = u->symbols().Find(copies_rel_name);
  if (copies_rel == kInvalidSymbol ||
      !with_copies.schema().HasRelation(copies_rel)) {
    return NotFoundError("no copies relation in instance");
  }
  std::vector<Instance> out;
  std::set<Oid> seen;
  for (ValueId reg : with_copies.Relation(copies_rel)) {
    const ValueNode& n = values.node(reg);
    if (n.kind != ValueKind::kSet) {
      return TypeError("copies registration is not a set");
    }
    std::set<Oid> members;
    for (ValueId e : n.elems) {
      const ValueNode& en = values.node(e);
      if (en.kind != ValueKind::kOid) {
        return TypeError("copies registration contains a non-oid");
      }
      if (!seen.insert(en.oid).second) {
        return InvalidArgumentError(
            "copies' oid sets must be pairwise disjoint (Def 4.2.3)");
      }
      members.insert(en.oid);
    }
    Instance copy(base_schema, u);
    for (Symbol p : base_schema->class_names()) {
      for (Oid o : with_copies.ClassExtent(p)) {
        if (!members.count(o)) continue;
        IQL_RETURN_IF_ERROR(copy.AddOid(p, o));
        auto v = with_copies.ValueOf(o);
        if (v.has_value()) {
          if (base_schema->IsSetValuedClass(p)) {
            for (ValueId e : values.node(*v).elems) {
              IQL_RETURN_IF_ERROR(copy.AddToSetOid(o, e));
            }
          } else {
            IQL_RETURN_IF_ERROR(copy.SetOidValue(o, *v));
          }
        }
      }
    }
    for (Symbol r : base_schema->relation_names()) {
      for (ValueId v : with_copies.Relation(r)) {
        std::set<Oid> in_fact;
        values.CollectOids(v, &in_fact);
        bool mine = true;
        for (Oid o : in_fact) {
          if (!members.count(o)) {
            mine = false;
            break;
          }
        }
        // Oid-free facts are shared by every copy.
        if (mine) IQL_RETURN_IF_ERROR(copy.AddToRelation(r, v));
      }
    }
    out.push_back(std::move(copy));
  }
  return out;
}

Result<Instance> EliminateCopies(const Instance& with_copies,
                                 std::shared_ptr<const Schema> base_schema,
                                 std::string_view copies_rel) {
  IQL_ASSIGN_OR_RETURN(
      std::vector<Instance> copies,
      SplitCopies(with_copies, std::move(base_schema), copies_rel));
  if (copies.empty()) {
    return NotFoundError("no copies registered");
  }
  for (size_t i = 1; i < copies.size(); ++i) {
    if (!OIsomorphic(copies[0], copies[i])) {
      return FailedPreconditionError(
          "registered copies are not pairwise O-isomorphic; refusing to "
          "eliminate (Thm 4.2.4's invariant is violated)");
    }
  }
  return std::move(copies[0]);
}

}  // namespace iqlkit
