#include "transform/relational.h"

#include <functional>
#include <map>
#include <set>
#include <string>

#include "base/logging.h"

namespace iqlkit {

namespace {

struct Vocab {
  Symbol node_cls, const_node, tuple_node, tuple_field, set_node, set_elem,
      ref_node, object_in, nu_value, rel_fact;

  static Vocab Lookup(Universe* u) {
    Vocab v;
    v.node_cls = u->Intern("Node");
    v.const_node = u->Intern("ConstNode");
    v.tuple_node = u->Intern("TupleNode");
    v.tuple_field = u->Intern("TupleField");
    v.set_node = u->Intern("SetNode");
    v.set_elem = u->Intern("SetElem");
    v.ref_node = u->Intern("RefNode");
    v.object_in = u->Intern("ObjectIn");
    v.nu_value = u->Intern("NuValue");
    v.rel_fact = u->Intern("RelFact");
    return v;
  }
};

ValueId Pair(Universe* u, ValueId a, ValueId b) {
  return u->values().Tuple(
      {{u->Intern("#1"), a}, {u->Intern("#2"), b}});
}

ValueId Triple(Universe* u, ValueId a, ValueId b, ValueId c) {
  return u->values().Tuple(
      {{u->Intern("#1"), a}, {u->Intern("#2"), b}, {u->Intern("#3"), c}});
}

}  // namespace

Result<Schema> RelationalVocabulary(Universe* u) {
  TypePool& t = u->types();
  TypeId d = t.Base();
  TypeId node = t.ClassNamed("Node");
  Schema s(u);
  IQL_RETURN_IF_ERROR(s.DeclareClass("Node", d));
  auto rel2 = [&](std::string_view name, TypeId a, TypeId b) {
    return s.DeclareRelation(
        name, t.Tuple({{u->Intern("#1"), a}, {u->Intern("#2"), b}}));
  };
  IQL_RETURN_IF_ERROR(rel2("ConstNode", node, d));
  IQL_RETURN_IF_ERROR(s.DeclareRelation("TupleNode", node));
  IQL_RETURN_IF_ERROR(s.DeclareRelation(
      "TupleField", t.Tuple({{u->Intern("#1"), node},
                             {u->Intern("#2"), d},
                             {u->Intern("#3"), node}})));
  IQL_RETURN_IF_ERROR(s.DeclareRelation("SetNode", node));
  IQL_RETURN_IF_ERROR(rel2("SetElem", node, node));
  IQL_RETURN_IF_ERROR(rel2("RefNode", node, node));
  IQL_RETURN_IF_ERROR(rel2("ObjectIn", d, node));
  IQL_RETURN_IF_ERROR(rel2("NuValue", node, node));
  IQL_RETURN_IF_ERROR(rel2("RelFact", d, node));
  IQL_RETURN_IF_ERROR(s.Validate());
  return s;
}

Result<Instance> EncodeRelational(const Instance& instance,
                                  std::shared_ptr<const Schema> vocabulary) {
  Universe* u = instance.universe();
  ValueStore& values = u->values();
  Vocab vocab = Vocab::Lookup(u);
  Instance out(std::move(vocabulary), u);

  // One surrogate per source object.
  std::map<Oid, Oid> object_node;
  for (Oid o : instance.Objects()) {
    IQL_ASSIGN_OR_RETURN(Oid node, out.CreateOid(vocab.node_cls));
    object_node.emplace(o, node);
  }
  // One surrogate per distinct non-oid value node, shared via memo.
  std::map<ValueId, Oid> value_node;
  std::function<Result<Oid>(ValueId)> encode_value =
      [&](ValueId v) -> Result<Oid> {
    auto memo = value_node.find(v);
    if (memo != value_node.end()) return memo->second;
    IQL_ASSIGN_OR_RETURN(Oid node, out.CreateOid(vocab.node_cls));
    value_node.emplace(v, node);
    ValueId node_val = values.OfOid(node);
    const ValueNode& n = values.node(v);
    switch (n.kind) {
      case ValueKind::kConst:
        IQL_RETURN_IF_ERROR(out.AddToRelation(
            vocab.const_node,
            Pair(u, node_val, values.ConstSymbol(n.atom))));
        break;
      case ValueKind::kOid:
        IQL_RETURN_IF_ERROR(out.AddToRelation(
            vocab.ref_node,
            Pair(u, node_val, values.OfOid(object_node.at(n.oid)))));
        break;
      case ValueKind::kTuple: {
        IQL_RETURN_IF_ERROR(out.AddToRelation(vocab.tuple_node, node_val));
        for (const auto& [attr, child] : n.fields) {
          IQL_ASSIGN_OR_RETURN(Oid child_node, encode_value(child));
          IQL_RETURN_IF_ERROR(out.AddToRelation(
              vocab.tuple_field,
              Triple(u, node_val, values.ConstSymbol(attr),
                     values.OfOid(child_node))));
        }
        break;
      }
      case ValueKind::kSet: {
        IQL_RETURN_IF_ERROR(out.AddToRelation(vocab.set_node, node_val));
        for (ValueId child : n.elems) {
          IQL_ASSIGN_OR_RETURN(Oid child_node, encode_value(child));
          IQL_RETURN_IF_ERROR(out.AddToRelation(
              vocab.set_elem,
              Pair(u, node_val, values.OfOid(child_node))));
        }
        break;
      }
    }
    return node;
  };

  for (Symbol p : instance.schema().class_names()) {
    ValueId class_name = values.ConstSymbol(p);
    for (Oid o : instance.ClassExtent(p)) {
      ValueId node_val = values.OfOid(object_node.at(o));
      IQL_RETURN_IF_ERROR(out.AddToRelation(
          vocab.object_in, Pair(u, class_name, node_val)));
      auto v = instance.ValueOf(o);
      if (v.has_value()) {
        IQL_ASSIGN_OR_RETURN(Oid vn, encode_value(*v));
        IQL_RETURN_IF_ERROR(out.AddToRelation(
            vocab.nu_value, Pair(u, node_val, values.OfOid(vn))));
      }
    }
  }
  for (Symbol r : instance.schema().relation_names()) {
    ValueId rel_name = values.ConstSymbol(r);
    for (ValueId v : instance.Relation(r)) {
      IQL_ASSIGN_OR_RETURN(Oid vn, encode_value(v));
      IQL_RETURN_IF_ERROR(out.AddToRelation(
          vocab.rel_fact, Pair(u, rel_name, values.OfOid(vn))));
    }
  }
  return out;
}

Result<Instance> DecodeRelational(
    const Instance& encoded, std::shared_ptr<const Schema> original_schema) {
  Universe* u = encoded.universe();
  ValueStore& values = u->values();
  Vocab vocab = Vocab::Lookup(u);
  const Schema* schema = original_schema.get();
  Instance out(std::move(original_schema), u);

  auto pair_of = [&](ValueId v) {
    const ValueNode& n = values.node(v);
    IQL_CHECK(n.kind == ValueKind::kTuple && n.fields.size() == 2);
    return std::make_pair(n.fields[0].second, n.fields[1].second);
  };
  auto oid_of = [&](ValueId v) {
    const ValueNode& n = values.node(v);
    IQL_CHECK(n.kind == ValueKind::kOid);
    return n.oid;
  };

  // Index the encoding.
  std::map<Oid, Symbol> const_nodes;        // node -> atom
  std::set<Oid> tuple_nodes, set_nodes;
  std::map<Oid, std::vector<std::pair<Symbol, Oid>>> tuple_fields;
  std::map<Oid, std::vector<Oid>> set_elems;
  std::map<Oid, Oid> ref_nodes;             // node -> object node
  std::map<Oid, std::pair<Symbol, Oid>> objects;  // obj node -> (class, fresh oid)
  std::map<Oid, Oid> nu_values;             // obj node -> value node
  for (ValueId v : encoded.Relation(vocab.const_node)) {
    auto [a, b] = pair_of(v);
    const_nodes[oid_of(a)] = values.node(b).atom;
  }
  for (ValueId v : encoded.Relation(vocab.tuple_node)) {
    tuple_nodes.insert(oid_of(v));
  }
  for (ValueId v : encoded.Relation(vocab.set_node)) {
    set_nodes.insert(oid_of(v));
  }
  for (ValueId v : encoded.Relation(vocab.tuple_field)) {
    const ValueNode& n = values.node(v);
    IQL_CHECK(n.fields.size() == 3);
    tuple_fields[oid_of(n.fields[0].second)].emplace_back(
        values.node(n.fields[1].second).atom, oid_of(n.fields[2].second));
  }
  for (ValueId v : encoded.Relation(vocab.set_elem)) {
    auto [a, b] = pair_of(v);
    set_elems[oid_of(a)].push_back(oid_of(b));
  }
  for (ValueId v : encoded.Relation(vocab.ref_node)) {
    auto [a, b] = pair_of(v);
    ref_nodes[oid_of(a)] = oid_of(b);
  }
  for (ValueId v : encoded.Relation(vocab.object_in)) {
    auto [a, b] = pair_of(v);
    Symbol cls = values.node(a).atom;
    if (!schema->HasClass(cls)) {
      return NotFoundError("encoded class not in target schema");
    }
    IQL_ASSIGN_OR_RETURN(Oid fresh, out.CreateOid(cls));
    objects.emplace(oid_of(b), std::make_pair(cls, fresh));
  }
  for (ValueId v : encoded.Relation(vocab.nu_value)) {
    auto [a, b] = pair_of(v);
    nu_values[oid_of(a)] = oid_of(b);
  }

  // Rebuild values bottom-up (value nodes are finite trees over object
  // references, so plain recursion with memoization terminates).
  std::map<Oid, ValueId> decoded;
  std::function<Result<ValueId>(Oid)> decode = [&](Oid node)
      -> Result<ValueId> {
    auto memo = decoded.find(node);
    if (memo != decoded.end()) return memo->second;
    ValueId result;
    if (auto c = const_nodes.find(node); c != const_nodes.end()) {
      result = values.ConstSymbol(c->second);
    } else if (auto r = ref_nodes.find(node); r != ref_nodes.end()) {
      auto obj = objects.find(r->second);
      if (obj == objects.end()) {
        return InvalidArgumentError("RefNode to an unregistered object");
      }
      result = values.OfOid(obj->second.second);
    } else if (tuple_nodes.count(node)) {
      std::vector<std::pair<Symbol, ValueId>> fields;
      for (const auto& [attr, child] : tuple_fields[node]) {
        IQL_ASSIGN_OR_RETURN(ValueId cv, decode(child));
        fields.emplace_back(attr, cv);
      }
      result = values.Tuple(std::move(fields));
    } else if (set_nodes.count(node)) {
      std::vector<ValueId> elems;
      for (Oid child : set_elems[node]) {
        IQL_ASSIGN_OR_RETURN(ValueId cv, decode(child));
        elems.push_back(cv);
      }
      result = values.Set(std::move(elems));
    } else {
      return InvalidArgumentError("value node with no kind fact");
    }
    decoded.emplace(node, result);
    return result;
  };

  for (const auto& [node, cls_oid] : objects) {
    auto nv = nu_values.find(node);
    if (nv == nu_values.end()) continue;
    IQL_ASSIGN_OR_RETURN(ValueId v, decode(nv->second));
    const auto& [cls, fresh] = cls_oid;
    if (schema->IsSetValuedClass(cls)) {
      for (ValueId e : values.node(v).elems) {
        IQL_RETURN_IF_ERROR(out.AddToSetOid(fresh, e));
      }
    } else {
      IQL_RETURN_IF_ERROR(out.SetOidValue(fresh, v));
    }
  }
  for (ValueId v : encoded.Relation(vocab.rel_fact)) {
    auto [a, b] = pair_of(v);
    Symbol rel = values.node(a).atom;
    if (!schema->HasRelation(rel)) {
      return NotFoundError("encoded relation not in target schema");
    }
    IQL_ASSIGN_OR_RETURN(ValueId fact, decode(oid_of(b)));
    IQL_RETURN_IF_ERROR(out.AddToRelation(rel, fact));
  }
  return out;
}

}  // namespace iqlkit
