#include "transform/turing.h"

#include <map>

#include "base/logging.h"
#include "iql/parser.h"

namespace iqlkit {

std::string TuringSimulatorSource() {
  // One machine step per invented time point. The stage is a single
  // inflationary fixpoint: facts about a new time point keep arriving
  // (state, head, written symbol, copied tape) and the next step's
  // invention fires only once they suffice to satisfy its body. The
  // val-dom head filter guarantees one NextT successor and at most one
  // left/right tape extension per cell, with no negation at all.
  return R"(
    schema {
      class T : D;                      # time points
      class Cell : D;                   # tape cells
      relation Trans : [D, D, D, D, D]; # q, read, q', write, move(L/R)
      relation Accepting : D;
      relation RightOf : [Cell, Cell];
      relation StateAt : [T, D];
      relation HeadAt  : [T, Cell];
      relation TapeAt  : [T, Cell, D];
      relation InitedCell : Cell;       # cells that already have a symbol
      relation NextT  : [T, T];
      relation Accept : T;
    }
    input Trans, Accepting, T, Cell, RightOf, StateAt, HeadAt, TapeAt,
          InitedCell;
    program {
      # A step happens whenever a transition applies: invent the next
      # time point (once per t, by the val-dom head filter).
      NextT(t, t2) :-
          StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, m).

      # The new configuration: state, written symbol, untouched tape.
      StateAt(t2, q2) :-
          NextT(t, t2), StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, m).
      TapeAt(t2, c, a2) :-
          NextT(t, t2), StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, m).
      TapeAt(t2, d, s) :-
          NextT(t, t2), HeadAt(t, c), TapeAt(t, d, s), d != c.

      # Head movement along the cell chain.
      HeadAt(t2, d) :-
          NextT(t, t2), StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, "R"), RightOf(c, d).
      HeadAt(t2, d) :-
          NextT(t, t2), StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, "L"), RightOf(d, c).

      # Tape extension on demand: a move off either end invents a fresh
      # cell. The val-dom head filter on RightOf(c, .) / RightOf(., c)
      # blocks the invention whenever the neighbour already exists, so
      # interior cells never grow extra neighbours and each end extends
      # at most once per visit.
      RightOf(c, e) :-
          StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, "R").
      RightOf(e, c) :-
          StateAt(t, q), HeadAt(t, c), TapeAt(t, c, a),
          Trans(q, a, q2, a2, "L").

      # A freshly invented cell is blank at the time the head arrives;
      # the loader seeds InitedCell for the input cells, and a visited
      # cell stays initialized forever, so no written symbol is ever
      # shadowed by a late blank.
      TapeAt(t, d, "B") :- HeadAt(t, d), !InitedCell(d).
      InitedCell(d) :- HeadAt(t, d).

      Accept(t) :- StateAt(t, q), Accepting(q).
    }
  )";
}

Result<TuringResult> RunTuringMachine(Universe* u, const TuringMachine& tm,
                                      const std::vector<std::string>& word,
                                      const EvalOptions& options) {
  auto unit = ParseUnit(u, TuringSimulatorSource());
  IQL_RETURN_IF_ERROR(unit.status());
  IQL_ASSIGN_OR_RETURN(Schema in_schema,
                       unit->schema.Project(unit->input_names));
  auto in_ptr = std::make_shared<const Schema>(std::move(in_schema));
  Instance input(in_ptr, u);
  ValueStore& v = u->values();
  auto pair = [&](ValueId a, ValueId b) {
    return v.Tuple({{PositionalAttr(u, 1), a}, {PositionalAttr(u, 2), b}});
  };

  for (const auto& t : tm.transitions) {
    if (t.move != 'L' && t.move != 'R') {
      return InvalidArgumentError("moves must be L or R");
    }
    IQL_RETURN_IF_ERROR(input.AddToRelation(
        "Trans",
        v.Tuple({{PositionalAttr(u, 1), v.Const(t.state)},
                 {PositionalAttr(u, 2), v.Const(t.read)},
                 {PositionalAttr(u, 3), v.Const(t.next_state)},
                 {PositionalAttr(u, 4), v.Const(t.write)},
                 {PositionalAttr(u, 5),
                  v.Const(t.move == 'L' ? "L" : "R")}})));
  }
  for (const std::string& q : tm.accepting_states) {
    IQL_RETURN_IF_ERROR(input.AddToRelation("Accepting", v.Const(q)));
  }
  // Initial configuration: time t0, one cell per input symbol (at least
  // one blank cell for the empty word), head on the leftmost cell.
  IQL_ASSIGN_OR_RETURN(Oid t0, input.CreateOid("T"));
  std::vector<Oid> cells;
  size_t n = word.empty() ? 1 : word.size();
  for (size_t i = 0; i < n; ++i) {
    IQL_ASSIGN_OR_RETURN(Oid c, input.CreateOid("Cell"));
    cells.push_back(c);
  }
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    IQL_RETURN_IF_ERROR(input.AddToRelation(
        "RightOf", pair(v.OfOid(cells[i]), v.OfOid(cells[i + 1]))));
  }
  for (size_t i = 0; i < n; ++i) {
    IQL_RETURN_IF_ERROR(input.AddToRelation(
        "TapeAt",
        v.Tuple({{PositionalAttr(u, 1), v.OfOid(t0)},
                 {PositionalAttr(u, 2), v.OfOid(cells[i])},
                 {PositionalAttr(u, 3),
                  v.Const(word.empty() ? "B" : word[i])}})));
  }
  IQL_RETURN_IF_ERROR(input.AddToRelation(
      "StateAt", pair(v.OfOid(t0), v.Const(tm.start_state))));
  IQL_RETURN_IF_ERROR(
      input.AddToRelation("HeadAt", pair(v.OfOid(t0), v.OfOid(cells[0]))));
  for (Oid c : cells) {
    IQL_RETURN_IF_ERROR(input.AddToRelation("InitedCell", v.OfOid(c)));
  }

  IQL_ASSIGN_OR_RETURN(Instance out,
                       EvaluateProgram(u, unit->schema, &unit->program,
                                       input, options));

  // Decode the run.
  TuringResult result;
  result.accepted = !out.Relation(u->Intern("Accept")).empty();
  result.steps = out.Relation(u->Intern("NextT")).size();
  // The final time point: the unique T-oid with no NextT successor.
  std::map<Oid, Oid> next;
  for (ValueId nf : out.Relation(u->Intern("NextT"))) {
    const ValueNode& node = v.node(nf);
    next.emplace(v.node(node.fields[0].second).oid,
                 v.node(node.fields[1].second).oid);
  }
  Oid last = t0;
  while (next.count(last)) last = next.at(last);
  // Reconstruct the cell chain left-to-right.
  std::map<Oid, Oid> right;
  std::set<Oid> has_left;
  for (ValueId rf : out.Relation(u->Intern("RightOf"))) {
    const ValueNode& node = v.node(rf);
    Oid a = v.node(node.fields[0].second).oid;
    Oid b = v.node(node.fields[1].second).oid;
    right.emplace(a, b);
    has_left.insert(b);
  }
  Oid leftmost = cells[0];
  // Walk left from the initial leftmost cell to any invented extension.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& [a, b] : right) {
      if (b == leftmost) {
        leftmost = a;
        moved = true;
        break;
      }
    }
  }
  (void)has_left;
  // Symbols at the final time.
  std::map<Oid, std::string> symbol;
  for (ValueId tf : out.Relation(u->Intern("TapeAt"))) {
    const ValueNode& node = v.node(tf);
    if (v.node(node.fields[0].second).oid != last) continue;
    symbol[v.node(node.fields[1].second).oid] =
        std::string(u->Name(v.node(node.fields[2].second).atom));
  }
  std::vector<std::string> tape;
  for (Oid c = leftmost;;) {
    auto it = symbol.find(c);
    tape.push_back(it == symbol.end() ? "B" : it->second);
    auto r = right.find(c);
    if (r == right.end()) break;
    c = r->second;
  }
  // Trim blanks at both ends.
  size_t begin = 0, end = tape.size();
  while (begin < end && tape[begin] == "B") ++begin;
  while (end > begin && tape[end - 1] == "B") --end;
  result.final_tape.assign(tape.begin() + begin, tape.begin() + end);
  return result;
}

}  // namespace iqlkit
