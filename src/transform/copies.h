#ifndef IQLKIT_TRANSFORM_COPIES_H_
#define IQLKIT_TRANSFORM_COPIES_H_

#include <memory>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

// Definition 4.2.3: the machinery behind "IQL is complete up to copy
// elimination" (Theorem 4.2.4). A complete program can construct finitely
// many O-isomorphic copies of the answer, separated by recording each
// copy's oid set in a distinguished relation; what it cannot always do is
// pick one (Theorem 4.3.1) -- that takes choose (IQL+) or an order.

// The schema-for-copies S-bar: S plus a relation `copies_rel` of type
// {P1 | ... | Pn} whose tuples are the per-copy oid sets.
Result<Schema> SchemaForCopies(Universe* universe, const Schema& base,
                               std::string_view copies_rel = "Copies");

// Builds an instance with `n` copies of `instance` (each an O-isomorphic
// renaming with fresh oids) over `copies_schema`, registering the copies'
// oid sets. `instance` must have at least one oid-bearing class for the
// registration to be meaningful; oid-free instances produce n identical
// (shared) fact sets and empty registrations.
Result<Instance> MakeCopies(const Instance& instance,
                            std::shared_ptr<const Schema> copies_schema,
                            int n);

// Splits an instance-with-copies back into its member instances over
// `base_schema`, using the registered oid sets: each copy receives the
// class members and nu-values of its oids, the relation facts whose oids
// all lie in its set, and every oid-free fact (those are shared).
Result<std::vector<Instance>> SplitCopies(
    const Instance& with_copies, std::shared_ptr<const Schema> base_schema,
    std::string_view copies_rel = "Copies");

// Copy elimination where it is expressible: returns one copy, after
// verifying that all registered copies are pairwise O-isomorphic (the
// invariant Theorem 4.2.4 guarantees).
Result<Instance> EliminateCopies(
    const Instance& with_copies, std::shared_ptr<const Schema> base_schema,
    std::string_view copies_rel = "Copies");

}  // namespace iqlkit

#endif  // IQLKIT_TRANSFORM_COPIES_H_
