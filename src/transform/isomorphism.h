#ifndef IQLKIT_TRANSFORM_ISOMORPHISM_H_
#define IQLKIT_TRANSFORM_ISOMORPHISM_H_

#include <functional>
#include <map>
#include <optional>

#include "model/instance.h"
#include "model/oid.h"

namespace iqlkit {

// O-isomorphism (§4.1): a bijection over oids (constants fixed pointwise)
// mapping one instance's ground facts exactly onto another's. Two
// O-isomorphic instances "contain the same information" -- IQL's outputs
// are defined only up to such renaming (Theorem 4.1.3), so the test suite
// uses this to verify determinacy.
//
// Both instances must be over schemas with the same names and share a
// universe. The search colors oids by iterated structural refinement
// (class, nu-value shape, relation occurrences -- a 1-WL style partition),
// then backtracks over color-compatible assignments and verifies the full
// ground-fact mapping. Exponential in the worst case (graph isomorphism),
// fine at test scale.
std::optional<std::map<Oid, Oid>> FindOIsomorphism(const Instance& a,
                                                   const Instance& b);

bool OIsomorphic(const Instance& a, const Instance& b);

// Applies a DO-renaming (oids and constants) to an instance, producing an
// instance over the same schema. `oid_map` must be injective on the
// instance's oids; `const_map` on its constant atoms. Identity by default.
// Used to exercise genericity (Definition 4.1.1 condition (3)).
Instance RenameInstance(const Instance& instance,
                        const std::function<Oid(Oid)>& oid_map,
                        const std::function<Symbol(Symbol)>& const_map);

// Convenience: renames only oids.
Instance RenameOids(const Instance& instance,
                    const std::function<Oid(Oid)>& oid_map);

}  // namespace iqlkit

#endif  // IQLKIT_TRANSFORM_ISOMORPHISM_H_
