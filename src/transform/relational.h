#ifndef IQLKIT_TRANSFORM_RELATIONAL_H_
#define IQLKIT_TRANSFORM_RELATIONAL_H_

#include <memory>

#include "base/result.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

// The flattening behind Proposition 4.2.2: any instance over any schema
// can be encoded in a fixed *relational-style* vocabulary by inventing
// surrogate oids for the structured o-values ("oids are invented to denote
// more structured o-values ... an obvious representation of ground
// facts"). This makes the yes/no-completeness argument executable and
// doubles as a generic, schema-independent serialization of instances.
//
// The fixed vocabulary (class/relation names as D-constants, one
// surrogate class):
//
//   class    Node      : D                     (surrogates; nu undefined)
//   relation ConstNode : [Node, D]             value node -> its constant
//   relation TupleNode : Node                  value node is a tuple
//   relation TupleField: [Node, D, Node]       (tuple, attr name, child)
//   relation SetNode   : Node                  value node is a set
//   relation SetElem   : [Node, Node]          (set, element)
//   relation RefNode   : [Node, Node]          value node -> object node
//   relation ObjectIn  : [D, Node]             (class name, object node)
//   relation NuValue   : [Node, Node]          (object node, value node)
//   relation RelFact   : [D, Node]             (relation name, value node)
//
// Value nodes are shared per distinct o-value (the hash-consing carries
// over), so the encoding is linear in the instance's DAG size.

// The fixed flattening vocabulary.
Result<Schema> RelationalVocabulary(Universe* universe);

// Encodes `instance` over the vocabulary. Invents one surrogate per
// object and per distinct non-oid o-value node.
Result<Instance> EncodeRelational(const Instance& instance,
                                  std::shared_ptr<const Schema> vocabulary);

// Rebuilds an instance over `original_schema` from its encoding,
// minting fresh oids for the objects: Decode(Encode(I)) is O-isomorphic
// to I.
Result<Instance> DecodeRelational(
    const Instance& encoded, std::shared_ptr<const Schema> original_schema);

}  // namespace iqlkit

#endif  // IQLKIT_TRANSFORM_RELATIONAL_H_
