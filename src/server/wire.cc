#include "server/wire.h"

#include <cstdio>

#include "base/fault_injection.h"
#include "storage/bytes.h"
#include "storage/checksum.h"

namespace iqlkit {
namespace server {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kPage:
      return "PAGE";
    case FrameType::kCancel:
      return "CANCEL";
    case FrameType::kDrain:
      return "DRAIN";
    case FrameType::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

// ---- WireObject ------------------------------------------------------------

WireObject& WireObject::Set(std::string_view key, WireValue value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const WireValue* WireObject::Find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<std::string> WireObject::GetString(std::string_view key) const {
  const WireValue* v = Find(key);
  if (v == nullptr) {
    return NetworkError("frame missing field '" + std::string(key) + "'");
  }
  if (v->kind != WireValue::Kind::kString) {
    return NetworkError("frame field '" + std::string(key) +
                        "' is not a string");
  }
  return v->str;
}

Result<int64_t> WireObject::GetInt(std::string_view key) const {
  const WireValue* v = Find(key);
  if (v == nullptr) {
    return NetworkError("frame missing field '" + std::string(key) + "'");
  }
  if (v->kind != WireValue::Kind::kInt) {
    return NetworkError("frame field '" + std::string(key) +
                        "' is not an integer");
  }
  return v->num;
}

Result<bool> WireObject::GetBool(std::string_view key) const {
  const WireValue* v = Find(key);
  if (v == nullptr) {
    return NetworkError("frame missing field '" + std::string(key) + "'");
  }
  if (v->kind != WireValue::Kind::kBool) {
    return NetworkError("frame field '" + std::string(key) +
                        "' is not a boolean");
  }
  return v->flag;
}

std::string WireObject::StringOr(std::string_view key,
                                 std::string_view fallback) const {
  const WireValue* v = Find(key);
  return v != nullptr && v->kind == WireValue::Kind::kString
             ? v->str
             : std::string(fallback);
}

int64_t WireObject::IntOr(std::string_view key, int64_t fallback) const {
  const WireValue* v = Find(key);
  return v != nullptr && v->kind == WireValue::Kind::kInt ? v->num : fallback;
}

bool WireObject::BoolOr(std::string_view key, bool fallback) const {
  const WireValue* v = Find(key);
  return v != nullptr && v->kind == WireValue::Kind::kBool ? v->flag
                                                           : fallback;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

// Minimal recursive-descent scanner for the flat-object subset the
// protocol emits. Anything richer (arrays, nesting, floats, null) is a
// NETWORK_ERROR: a peer sending it is not speaking this protocol.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  Result<WireObject> Object() {
    SkipSpace();
    if (!Consume('{')) return Err("expected '{'");
    WireObject obj;
    SkipSpace();
    if (Consume('}')) {
      SkipSpace();
      return AtEnd() ? Result<WireObject>(obj) : Err("trailing bytes");
    }
    for (;;) {
      SkipSpace();
      std::string key;
      IQL_RETURN_IF_ERROR(String(&key));
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      SkipSpace();
      WireValue value;
      IQL_RETURN_IF_ERROR(Value(&value));
      obj.Set(key, std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    SkipSpace();
    if (!AtEnd()) return Err("trailing bytes");
    return obj;
  }

 private:
  Status Value(WireValue* out) {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      std::string s;
      IQL_RETURN_IF_ERROR(String(&s));
      *out = WireValue::String(std::move(s));
      return Status::Ok();
    }
    if (Lexeme("true")) {
      *out = WireValue::Bool(true);
      return Status::Ok();
    }
    if (Lexeme("false")) {
      *out = WireValue::Bool(false);
      return Status::Ok();
    }
    return Integer(out);
  }

  Status String(std::string* out) {
    if (!Consume('"')) return Err("expected '\"'").status();
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Err("truncated \\u escape").status();
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Err("bad \\u escape").status();
            }
          }
          // The encoder only emits \u00XX for control bytes; anything
          // above Latin-1 would need UTF-8 encoding this codec does not
          // promise.
          if (code > 0xFF) return Err("\\u escape out of range").status();
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Err("unknown escape").status();
      }
    }
    return Err("unterminated string").status();
  }

  Status Integer(WireValue* out) {
    size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    uint64_t magnitude = 0;
    size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      magnitude = magnitude * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      if (magnitude > (uint64_t{1} << 62)) {
        return Err("integer overflow").status();
      }
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return Err("expected a value").status();
    }
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                text_[pos_] == 'E')) {
      return Err("floats are not part of the protocol").status();
    }
    int64_t value = static_cast<int64_t>(magnitude);
    *out = WireValue::Int(negative ? -value : value);
    return Status::Ok();
  }

  bool Lexeme(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ == text_.size(); }

  Result<WireObject> Err(std::string_view what) {
    return NetworkError("bad frame payload at byte " + std::to_string(pos_) +
                        ": " + std::string(what));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string WireObject::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, key);
    out.push_back(':');
    switch (value.kind) {
      case WireValue::Kind::kString:
        AppendJsonString(&out, value.str);
        break;
      case WireValue::Kind::kInt:
        out += std::to_string(value.num);
        break;
      case WireValue::Kind::kBool:
        out += value.flag ? "true" : "false";
        break;
    }
  }
  out.push_back('}');
  return out;
}

Result<WireObject> WireObject::FromJson(std::string_view json) {
  return JsonScanner(json).Object();
}

// ---- framing ---------------------------------------------------------------

std::string EncodeFrame(const Frame& frame) {
  std::string payload = frame.body.ToJson();
  std::string crc_input;
  crc_input.push_back(static_cast<char>(frame.type));
  crc_input.append(payload);
  storage::ByteWriter w;
  w.U32(static_cast<uint32_t>(1 + 4 + payload.size()));
  w.U8(static_cast<uint8_t>(frame.type));
  w.U32(storage::Crc32(crc_input));
  w.Bytes(payload);
  return w.Take();
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!poisoned_.ok()) return poisoned_;
  std::string_view view(buffer_);
  view.remove_prefix(consumed_);
  if (view.size() < 4) return std::optional<Frame>();
  storage::ByteReader header(view.substr(0, 4));
  uint32_t len = header.U32();
  if (len < 1 + 4) {
    poisoned_ = NetworkError("frame length " + std::to_string(len) +
                             " below the 5-byte header");
    return poisoned_;
  }
  if (len > 1 + 4 + kMaxFramePayload) {
    poisoned_ = NetworkError("frame length " + std::to_string(len) +
                             " exceeds the " +
                             std::to_string(kMaxFramePayload) +
                             "-byte payload ceiling");
    return poisoned_;
  }
  if (view.size() < 4 + static_cast<size_t>(len)) {
    return std::optional<Frame>();  // wait for the rest
  }
  std::string_view body = view.substr(4, len);
  uint8_t type_byte = static_cast<uint8_t>(body[0]);
  storage::ByteReader crc_reader(body.substr(1, 4));
  uint32_t want_crc = crc_reader.U32();
  std::string_view payload = body.substr(5);
  std::string crc_input;
  crc_input.push_back(static_cast<char>(type_byte));
  crc_input.append(payload);
  if (storage::Crc32(crc_input) != want_crc) {
    poisoned_ = NetworkError("frame CRC mismatch (torn or corrupt frame)");
    return poisoned_;
  }
  if (type_byte > static_cast<uint8_t>(FrameType::kError)) {
    poisoned_ = NetworkError("unknown frame type " + std::to_string(type_byte));
    return poisoned_;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  auto parsed = WireObject::FromJson(payload);
  if (!parsed.ok()) {
    poisoned_ = parsed.status();
    return poisoned_;
  }
  frame.body = std::move(*parsed);
  consumed_ += 4 + static_cast<size_t>(len);
  // Compact once the dead prefix dominates; keeps Feed() amortized O(1).
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return std::optional<Frame>(std::move(frame));
}

// ---- memory streams --------------------------------------------------------

size_t MemoryPipe::Push(std::string_view bytes) {
  size_t room = capacity_ > data_.size() ? capacity_ - data_.size() : 0;
  size_t n = bytes.size() < room ? bytes.size() : room;
  data_.append(bytes.substr(0, n));
  return n;
}

size_t MemoryPipe::Pull(std::string* out, size_t max_bytes) {
  size_t n = data_.size() < max_bytes ? data_.size() : max_bytes;
  out->append(data_, 0, n);
  data_.erase(0, n);
  return n;
}

Result<size_t> MemoryStream::Read(std::string* out, size_t max_bytes) {
  MemoryPipe& pipe = in();
  if (pipe.size() == 0 && pipe.closed()) return size_t{0};  // EOF
  return pipe.Pull(out, max_bytes);
}

Status MemoryStream::Write(std::string_view bytes) {
  MemoryPipe& pipe = out_pipe();
  if (pipe.closed()) {
    return NetworkError("peer closed the connection");
  }
  if (pipe.capacity() - pipe.size() < bytes.size()) {
    // All-or-nothing: pushing a prefix would duplicate bytes when the
    // session retries the frame after the stall clears.
    return NetworkError("write stall: peer buffer full (" +
                        std::to_string(pipe.size()) + " of " +
                        std::to_string(pipe.capacity()) + " bytes queued)");
  }
  pipe.Push(bytes);
  return Status::Ok();
}

void MemoryStream::Close() {
  duplex_->c2s.Close();
  duplex_->s2c.Close();
}

bool MemoryStream::closed() const { return in().closed(); }

// ---- fault injection -------------------------------------------------------

bool InjectNetworkFault(NetworkFaultMode* mode) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.ShouldFail(FaultSite::kNetwork)) return false;
  uint64_t n = injector.injected(FaultSite::kNetwork);
  switch (n % 3) {
    case 1:
      *mode = NetworkFaultMode::kTornWrite;
      break;
    case 2:
      *mode = NetworkFaultMode::kDisconnect;
      break;
    default:
      *mode = NetworkFaultMode::kStall;
      break;
  }
  return true;
}

Result<size_t> FaultyStream::Read(std::string* out, size_t max_bytes) {
  NetworkFaultMode mode;
  if (InjectNetworkFault(&mode)) {
    switch (mode) {
      case NetworkFaultMode::kDisconnect:
        wrapped_->Close();
        return NetworkError("injected disconnect on read");
      case NetworkFaultMode::kStall:
        return NetworkError("injected read stall");
      case NetworkFaultMode::kTornWrite:
        // A torn *inbound* frame: deliver half of what is available, then
        // reset. The decoder reports the truncation as NETWORK_ERROR.
        {
          std::string chunk;
          auto r = wrapped_->Read(&chunk, max_bytes);
          if (!r.ok()) return r;
          out->append(chunk, 0, chunk.size() / 2);
          wrapped_->Close();
          return NetworkError("injected torn read");
        }
    }
  }
  return wrapped_->Read(out, max_bytes);
}

Status FaultyStream::Write(std::string_view bytes) {
  NetworkFaultMode mode;
  if (InjectNetworkFault(&mode)) {
    switch (mode) {
      case NetworkFaultMode::kTornWrite: {
        // Half the frame reaches the wire; the connection is then dead.
        (void)wrapped_->Write(bytes.substr(0, bytes.size() / 2));
        wrapped_->Close();
        return NetworkError("injected torn write after " +
                            std::to_string(bytes.size() / 2) + " of " +
                            std::to_string(bytes.size()) + " bytes");
      }
      case NetworkFaultMode::kDisconnect:
        wrapped_->Close();
        return NetworkError("injected disconnect on write");
      case NetworkFaultMode::kStall:
        return NetworkError("injected write stall: slow client");
    }
  }
  return wrapped_->Write(bytes);
}

bool IsStallError(const Status& status) {
  return status.code() == StatusCode::kNetworkError &&
         status.message().find("stall") != std::string::npos;
}

}  // namespace server
}  // namespace iqlkit
