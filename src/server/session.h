#ifndef IQLKIT_SERVER_SESSION_H_
#define IQLKIT_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "server/scheduler.h"
#include "server/wire.h"

namespace iqlkit {
namespace server {

// Tuning knobs for one client session. Timeouts are measured on the
// session's clock (wall milliseconds in the real server, virtual ticks in
// the deterministic simulation), so the same state machine is testable
// under both.
struct SessionOptions {
  // Close the session when no inbound frame completes for this long. A
  // client that is merely waiting on results keeps the session alive with
  // HELLO {"ping":true} heartbeats.
  uint64_t idle_timeout_ms = 30000;
  // A frame whose first bytes arrived but whose tail does not complete
  // within this window is torn (a stalled or half-dead sender).
  uint64_t read_timeout_ms = 5000;
  // Budget for a stalled outbound frame (slow client not draining its
  // socket). Once exceeded, the session closes and abandons its queries.
  uint64_t write_timeout_ms = 5000;
  // Advisory heartbeat cadence, reported to the client in the HELLO ack.
  uint64_t heartbeat_interval_ms = 10000;
  // Per-session in-flight query quota, layered *under* the scheduler's
  // class quotas: the session rejects excess QUERY frames locally (ERROR
  // OVERLOAD) without spending scheduler admission capacity.
  size_t max_inflight = 4;
  // Fact lines per PAGE frame. The client requests pages one at a time
  // (PAGE {"id","want"}), so this bounds both frame size and the burst a
  // slow client must absorb.
  size_t page_rows = 64;
};

// Why a session ended. Exactly one reason is set when Pump() starts
// returning false.
enum class SessionClose : uint8_t {
  kOpen = 0,        // still running
  kPeerClosed,      // clean EOF or reset from the client
  kIdleTimeout,     // no inbound frame within idle_timeout_ms
  kReadTimeout,     // torn frame: partial bytes, no tail
  kWriteTimeout,    // slow client: outbound frame stalled past budget
  kProtocolError,   // bad handshake, CRC mismatch, malformed frame
  kDrained,         // drain completed: every query delivered, DRAIN sent
  kForced,          // server shutdown closed the stream under the session
};
const char* SessionCloseName(SessionClose reason);

struct SessionCounters {
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t heartbeats = 0;
  uint64_t queries_accepted = 0;  // admitted into the scheduler
  uint64_t queries_rejected = 0;  // structured reject (quota/backlog/drain)
  uint64_t pages_sent = 0;
  // Terminal deliveries: the final PAGE for the query reached the wire.
  uint64_t delivered_completed = 0;
  uint64_t delivered_tripped = 0;
  uint64_t delivered_cancelled = 0;
  uint64_t delivered_failed = 0;
  // Accepted queries whose session died before the final PAGE; each was
  // cancelled in the scheduler, so it still reached a terminal state there.
  uint64_t abandoned = 0;
};

// Serialized trace sink shared by every session of one serve loop (and
// the loop itself). In the deterministic simulation all writers run on
// one thread, so lines interleave reproducibly.
class TraceSink {
 public:
  explicit TraceSink(std::ostream* out) : out_(out) {}
  void Line(uint64_t tick, const std::string& text);
  bool enabled() const { return out_ != nullptr; }

 private:
  std::mutex mu_;
  std::ostream* out_;
};

// One client connection: HELLO handshake, QUERY admission against the
// shared scheduler, client-paced PAGE streaming, CANCEL, heartbeats,
// timeouts, and drain. The session owns no thread; the caller pumps it
// (a per-connection thread in the real server, the step loop in the
// deterministic simulation).
//
//   state:  AwaitHello --HELLO--> Ready --drain--> Draining --> Closed
//
// Every QUERY a session accepts reaches exactly one terminal frame on
// the wire -- a final PAGE (done:true, outcome) or a structured ERROR --
// unless the connection dies first, in which case the query is cancelled
// in the scheduler (a terminal state there) and counted `abandoned`.
class Session {
 public:
  Session(uint64_t id, ByteStream* stream, Scheduler* scheduler,
          const SessionOptions& options, TraceSink* trace);

  // Advances the protocol as far as it can without blocking: consumes
  // available inbound bytes, handles complete frames, polls finished
  // queries, flushes outbound pages, applies timeouts. Returns true while
  // the session remains open.
  bool Pump(uint64_t now_ms);

  // Asks the session to drain (thread-safe; honored at the next Pump):
  // send DRAIN, reject further QUERY frames, close once every in-flight
  // query is delivered.
  void RequestDrain() { drain_requested_.store(true); }

  // Hard stop (server shutdown past the grace window): cancels and
  // abandons in-flight queries and closes the stream.
  void ForceClose(uint64_t now_ms);

  bool open() const { return close_reason_ == SessionClose::kOpen; }
  SessionClose close_reason() const { return close_reason_; }
  const SessionCounters& counters() const { return counters_; }
  size_t live_queries() const { return queries_.size(); }
  uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }

 private:
  enum class State : uint8_t { kAwaitHello, kReady, kDraining };

  struct LiveQuery {
    uint64_t ticket = 0;
    std::string wire_id;           // client-chosen id (frame field)
    bool result_ready = false;
    QueryResult result;
    std::vector<std::string> pages;  // materialized page payloads
    int64_t next_seq = 0;            // next page index to send
    int64_t pending_want = -1;       // client-requested page, -1 = none
    bool push_terminal = false;      // cancel/drain: push final page unasked
    bool terminal_sent = false;      // final page enqueued; ignore credits
  };

  // One encoded frame awaiting the wire. A non-empty done_id marks the
  // terminal PAGE of that query: delivery is only counted -- and the query
  // only retired -- when the frame actually reaches the stream, so a
  // session that dies with the frame still queued abandons (and cancels)
  // the query instead of reporting it delivered.
  struct Outgoing {
    std::string bytes;
    std::string done_id;
    QueryOutcome outcome = QueryOutcome::kFailed;
  };

  void Trace(uint64_t now_ms, const std::string& text);
  void HandleFrame(uint64_t now_ms, const Frame& frame);
  void HandleHello(uint64_t now_ms, const Frame& frame);
  void HandleQuery(uint64_t now_ms, const Frame& frame);
  void HandlePage(uint64_t now_ms, const Frame& frame);
  void HandleCancel(uint64_t now_ms, const Frame& frame);
  void PollQueries(uint64_t now_ms);
  void EmitPages(uint64_t now_ms);
  void SendFrame(uint64_t now_ms, const Frame& frame);
  void SendError(uint64_t now_ms, const Status& status,
                 const std::string& query_id);
  void FlushOutbox(uint64_t now_ms);
  void Close(uint64_t now_ms, SessionClose reason);
  void AbandonLiveQueries();

  const uint64_t id_;
  ByteStream* stream_;
  Scheduler* scheduler_;
  SessionOptions options_;
  TraceSink* trace_;

  State state_ = State::kAwaitHello;
  SessionClose close_reason_ = SessionClose::kOpen;
  std::atomic<bool> drain_requested_{false};
  bool drain_sent_ = false;
  std::string tenant_;

  FrameDecoder decoder_;
  std::deque<Outgoing> outbox_;
  bool started_ = false;            // first Pump initializes the clocks
  uint64_t last_inbound_ms_ = 0;    // last completed inbound frame
  uint64_t partial_since_ms_ = 0;   // first byte of the pending frame
  bool partial_pending_ = false;
  uint64_t stall_since_ms_ = 0;     // first stalled outbound write
  bool stalled_ = false;

  std::map<std::string, LiveQuery> queries_;  // by wire id
  SessionCounters counters_;
};

}  // namespace server
}  // namespace iqlkit

#endif  // IQLKIT_SERVER_SESSION_H_
