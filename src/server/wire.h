#ifndef IQLKIT_SERVER_WIRE_H_
#define IQLKIT_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace iqlkit {
namespace server {

// The iqlserve wire protocol: length-prefixed frames with JSON payloads.
//
//   [u32 len][u8 type][u32 crc][payload]        (little-endian, like IQS1)
//
// `len` counts everything after itself (1 + 4 + payload bytes); `crc` is
// CRC-32 (storage/checksum.h) over the type byte followed by the payload,
// so a torn or bit-rotted frame is detected before its JSON is looked at.
// The payload is one *flat* JSON object (string / integer / boolean
// values only) -- rich structure travels inside string fields (IQL source
// in QUERY, serialized facts in PAGE), which keeps the codec small enough
// to audit and the frames stable enough to golden-pin.
//
// Frame types and their fields (all sessions start with a HELLO
// handshake; see session.h for the full lifecycle):
//
//   HELLO   c->s  {version, tenant}            handshake
//           s->c  {version, session, max_inflight, page_rows}
//           c->s  {ping: true}                 heartbeat, echoed with
//           s->c  {pong: true}                 the same frame type
//   QUERY   c->s  {id, source, class?, priority?, max_steps?, timeout_ms?,
//                  max_memory?, reserve?}
//   PAGE    c->s  {id, want}                   request page `want` (credit)
//           s->c  {id, seq, data, done, outcome?, status?, code?, attempts?}
//   CANCEL  c->s  {id}
//   DRAIN   s->c  {reason}                     server stops accepting
//   ERROR   both  {code, message, id?}         structured failure
enum class FrameType : uint8_t {
  kHello = 0,
  kQuery = 1,
  kPage = 2,
  kCancel = 3,
  kDrain = 4,
  kError = 5,
};

// Stable upper-case name: "HELLO", "QUERY", ...
const char* FrameTypeName(FrameType type);

// Protocol version carried in every HELLO; a mismatch is refused with an
// ERROR frame before any query is accepted.
inline constexpr int64_t kWireVersion = 1;

// Hard ceiling on one frame's payload: a hostile or corrupt length prefix
// must never drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

// One value of a flat JSON payload object.
struct WireValue {
  enum class Kind : uint8_t { kString, kInt, kBool };
  Kind kind = Kind::kString;
  std::string str;
  int64_t num = 0;
  bool flag = false;

  static WireValue String(std::string s) {
    WireValue v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static WireValue Int(int64_t n) {
    WireValue v;
    v.kind = Kind::kInt;
    v.num = n;
    return v;
  }
  static WireValue Bool(bool b) {
    WireValue v;
    v.kind = Kind::kBool;
    v.flag = b;
    return v;
  }
};

// A flat JSON object in insertion order (deterministic encoding: the same
// field sequence always serializes to the same bytes, which is what makes
// simulated-client traces byte-identical per seed).
class WireObject {
 public:
  WireObject& Set(std::string_view key, WireValue value);
  WireObject& SetString(std::string_view key, std::string_view value) {
    return Set(key, WireValue::String(std::string(value)));
  }
  WireObject& SetInt(std::string_view key, int64_t value) {
    return Set(key, WireValue::Int(value));
  }
  WireObject& SetBool(std::string_view key, bool value) {
    return Set(key, WireValue::Bool(value));
  }

  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  // Typed getters: missing key or wrong kind is a structured error (the
  // session turns it into an ERROR frame, never a crash).
  Result<std::string> GetString(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;
  // Lenient forms for optional fields.
  std::string StringOr(std::string_view key, std::string_view fallback) const;
  int64_t IntOr(std::string_view key, int64_t fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;

  // {"key":"value","n":1,...} with minimal escaping (\" \\ \n \r \t and
  // \u00XX for other control bytes).
  std::string ToJson() const;
  // Parses a flat object; nested arrays/objects, floats, and null are
  // refused (the protocol never emits them).
  static Result<WireObject> FromJson(std::string_view json);

  const std::vector<std::pair<std::string, WireValue>>& fields() const {
    return fields_;
  }

 private:
  const WireValue* Find(std::string_view key) const;

  std::vector<std::pair<std::string, WireValue>> fields_;
};

struct Frame {
  FrameType type = FrameType::kError;
  WireObject body;
};

// Serializes a frame to its on-wire bytes (length prefix, type, CRC,
// JSON payload).
std::string EncodeFrame(const Frame& frame);

// Incremental frame decoder: feed bytes as they arrive, pull complete
// frames out. A CRC mismatch, an oversize or truncated-by-close frame, an
// unknown type byte, or unparseable JSON is a NETWORK_ERROR -- the decoder
// is then poisoned (the stream has lost sync; the session must close).
class FrameDecoder {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // One complete frame, std::nullopt when more bytes are needed, or the
  // sticky decode error.
  Result<std::optional<Frame>> Next();

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // compacted lazily
  Status poisoned_;
};

// ---- byte streams ---------------------------------------------------------

// Transport abstraction under one session: a TCP socket in the real
// server, an in-memory duplex half for simulated clients and tests. Reads
// and writes move whole buffers; short writes only ever come from fault
// injection or a closed peer.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Appends up to `max_bytes` of available input to `*out`. Returns the
  // byte count (0 = clean EOF) or an error (reset, injected fault). Never
  // blocks; the caller owns readiness (poll in the real server, the step
  // loop in simulation).
  virtual Result<size_t> Read(std::string* out, size_t max_bytes) = 0;

  // Accepts the whole buffer or fails without consuming any of it. A
  // stall (peer not draining; see IsStallError) is retryable with the
  // same bytes; any other error means the wire has an incomplete frame on
  // it and the connection is unusable. An implementation may accept bytes
  // it has not yet pushed to the peer (FdStream stashes the unsent tail
  // of one frame); Flush() drains such internal buffers.
  virtual Status Write(std::string_view bytes) = 0;

  // Pushes any internally buffered bytes toward the peer. Ok when nothing
  // remains buffered; a stall error while the peer is not draining.
  virtual Status Flush() { return Status::Ok(); }

  virtual void Close() = 0;
  virtual bool closed() const = 0;
};

// One direction of an in-process connection: a byte queue with a bounded
// capacity so a stalled reader exerts real backpressure on the writer.
// The two ends of a simulated connection are two MemoryPipes; see
// MemoryDuplex.
class MemoryPipe {
 public:
  explicit MemoryPipe(size_t capacity = 1 << 20) : capacity_(capacity) {}

  size_t size() const { return data_.size(); }
  size_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }
  void Close() { closed_ = true; }

  // Appends what fits; returns the bytes accepted (the rest would block).
  size_t Push(std::string_view bytes);
  // Moves up to max_bytes out of the queue.
  size_t Pull(std::string* out, size_t max_bytes);

 private:
  std::string data_;
  size_t capacity_;
  bool closed_ = false;
};

// The two ends of an in-process connection. `client` writes into `c2s`
// and reads from `s2c`; `server` is the mirror image. Single-threaded by
// design: the deterministic serve loop steps clients and sessions from
// one thread, so no locking (and no nondeterministic interleaving) exists.
struct MemoryDuplex {
  explicit MemoryDuplex(size_t capacity = 1 << 20)
      : c2s(capacity), s2c(capacity) {}
  // Asymmetric capacities, e.g. a tiny s2c to model a slow client that
  // stops draining its socket.
  MemoryDuplex(size_t c2s_capacity, size_t s2c_capacity)
      : c2s(c2s_capacity), s2c(s2c_capacity) {}
  MemoryPipe c2s;
  MemoryPipe s2c;
};

// A ByteStream view of one side of a MemoryDuplex.
class MemoryStream : public ByteStream {
 public:
  // server side reads c2s / writes s2c; client side the reverse.
  MemoryStream(MemoryDuplex* duplex, bool server_side)
      : duplex_(duplex), server_(server_side) {}

  Result<size_t> Read(std::string* out, size_t max_bytes) override;
  Status Write(std::string_view bytes) override;
  void Close() override;
  bool closed() const override;

 private:
  MemoryPipe& in() { return server_ ? duplex_->c2s : duplex_->s2c; }
  MemoryPipe& out_pipe() { return server_ ? duplex_->s2c : duplex_->c2s; }
  const MemoryPipe& in() const { return server_ ? duplex_->c2s : duplex_->s2c; }

  MemoryDuplex* duplex_;
  bool server_;
};

// ---- network fault injection ----------------------------------------------

// Deterministic failure modes for FaultSite::kNetwork, cycled by injected
// count exactly like the storage site's short-write/fsync/lost-rename
// rotation, so a seeded soak hits all of them in a reproducible order.
// kRefusedAccept is drawn at the accept site (serve_loop), the other
// three at stream reads/writes.
enum class NetworkFaultMode : uint8_t {
  kTornWrite = 0,   // half the bytes reach the wire, then the peer is gone
  kDisconnect = 1,  // connection reset mid-read/mid-write
  kStall = 2,       // the peer stops draining; the op reports a stall
};

// Consults the injector; on injection picks the mode from the injected
// count. Returns false almost always (probability p_network).
bool InjectNetworkFault(NetworkFaultMode* mode);

// A ByteStream wrapper that consults FaultSite::kNetwork on every read
// and write. Torn writes push a prefix of the frame to the wrapped
// stream and then fail (the peer sees a truncated frame and must treat
// it as NETWORK_ERROR); disconnects fail without a payload; stalls
// surface as a distinguished NETWORK_ERROR mentioning "stall" which the
// session charges against the peer's write timeout instead of closing
// instantly.
class FaultyStream : public ByteStream {
 public:
  explicit FaultyStream(ByteStream* wrapped) : wrapped_(wrapped) {}

  Result<size_t> Read(std::string* out, size_t max_bytes) override;
  Status Write(std::string_view bytes) override;
  Status Flush() override { return wrapped_->Flush(); }
  void Close() override { wrapped_->Close(); }
  bool closed() const override { return wrapped_->closed(); }

 private:
  ByteStream* wrapped_;
};

// True for wire-level failures that name an injected or real stall (the
// session maps these onto the slow-client write-timeout path).
bool IsStallError(const Status& status);

}  // namespace server
}  // namespace iqlkit

#endif  // IQLKIT_SERVER_WIRE_H_
