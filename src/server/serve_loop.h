#ifndef IQLKIT_SERVER_SERVE_LOOP_H_
#define IQLKIT_SERVER_SERVE_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "server/session.h"
#include "server/wire.h"

namespace iqlkit {
namespace server {

// Serving knobs shared by the real TCP server and the deterministic
// simulation.
struct ServeOptions {
  SessionOptions session;
  // Concurrent-connection ceiling; accepts beyond it are refused (the
  // socket is closed before HELLO, exactly like an injected refusal).
  size_t max_sessions = 64;
  // Graceful-drain grace window: after this long, running queries are
  // preempted (their partials checkpoint via the durability path) and,
  // after a second window, surviving connections are force-closed.
  uint64_t drain_grace_ms = 2000;
  // Event log (ACCEPT/REFUSE/session lifecycle); sessions share it.
  std::ostream* trace = nullptr;
};

// Aggregated serving outcome, stable whether the sessions ran on threads
// over TCP or single-threaded in simulation.
struct ServeStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_refused = 0;  // injected refusal or max_sessions
  SessionCounters totals;         // summed over every closed session
  std::map<std::string, uint64_t> close_reasons;  // SessionCloseName -> n
};

// ---- real server -----------------------------------------------------------

// A ByteStream over a nonblocking TCP socket. Write() accepts whole
// frames: bytes the kernel will not take yet are stashed (at most one
// frame's tail) and drained by Flush(); a Write while a tail is pending
// reports a stall without consuming anything, so the caller's retry
// cannot duplicate bytes.
class FdStream : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  ~FdStream() override { Close(); }

  Result<size_t> Read(std::string* out, size_t max_bytes) override;
  Status Write(std::string_view bytes) override;
  Status Flush() override;
  void Close() override;
  bool closed() const override { return closed_; }

 private:
  int fd_;
  bool closed_ = false;
  std::string pending_;  // unsent tail of the last accepted frame
};

// The TCP serve loop: accept connections, run one Session per connection
// on its own thread, drain gracefully on request.
//
//   Listen(port)  -- bind + listen; port 0 binds an ephemeral port and
//                    the bound port is returned (and printed by iqlserve)
//   Serve()       -- blocks: accepts until RequestDrain(), then runs the
//                    drain state machine (stop accepting -> grace ->
//                    PreemptAll -> grace -> force close) and joins
//   RequestDrain()-- async-signal-safe (one atomic store); SIGTERM calls
//                    this from the handler
//
// Every accepted query reaches exactly one terminal state: delivered on
// the wire, or abandoned-and-cancelled in the scheduler.
class TcpServer {
 public:
  TcpServer(Scheduler* scheduler, const ServeOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:<port> (0 = ephemeral) and listens. Returns the
  // bound port.
  Result<uint16_t> Listen(uint16_t port);

  // Accept/serve until a drain completes. Returns aggregate stats.
  ServeStats Serve();

  void RequestDrain() { drain_requested_.store(true); }
  uint16_t port() const { return port_; }

 private:
  void ConnectionLoop(int fd, uint64_t session_id);
  uint64_t NowMs() const;

  Scheduler* scheduler_;
  ServeOptions options_;
  TraceSink trace_;
  std::chrono::steady_clock::time_point start_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> force_close_{false};
  std::atomic<size_t> live_sessions_{0};

  std::mutex mu_;  // guards threads_ and stats_
  std::vector<std::thread> threads_;
  ServeStats stats_;
};

// ---- deterministic simulation ----------------------------------------------

// One scripted query of a simulated client.
struct SimQuery {
  uint64_t at_ms = 0;  // submit once the virtual clock reaches this
  std::string id;      // wire id (unique per client)
  std::string source;  // IQL source unit
  std::string cls = "batch";
  int64_t priority = 0;
  uint64_t cancel_at_ms = 0;  // 0 = never send CANCEL
};

// One simulated in-process client: connects at t=0, HELLOs, submits its
// scripted queries, requests pages one at a time, heartbeats, and records
// what came back.
struct SimClientSpec {
  std::string tenant;
  std::vector<SimQuery> queries;
  uint64_t disconnect_at_ms = 0;  // 0 = stay until drained/finished
};

// What one simulated client observed.
struct SimClientReport {
  bool refused = false;  // injected refusal: never connected
  bool drained = false;  // saw a DRAIN frame
  uint64_t pages = 0;
  // wire id -> terminal observation: "outcome:<name>" from a final PAGE,
  // or "error:<CODE>" from a structured ERROR frame. A query missing here
  // never reached the client (its session died first).
  std::map<std::string, std::string> terminal;
  // wire id -> concatenated PAGE data fields (the full fact listing once
  // the query is terminal; byte-identical to a standalone evaluation).
  std::map<std::string, std::string> data;
};

// Runs scripted clients against in-process sessions on one thread with a
// virtual millisecond clock: step clients, pump sessions, run the
// scheduler until idle, advance 1ms. With a deterministic scheduler and a
// seeded fault injector the interleaving -- and therefore every trace
// line and frame byte -- is a pure function of (specs, seed).
//
// `drain_at_ms` > 0 triggers the graceful-drain path at that instant
// (BeginDrain + DRAIN frames + PreemptAll of still-queued work).
struct SimOutcome {
  ServeStats stats;
  std::vector<SimClientReport> clients;
};
SimOutcome ServeSimulated(Scheduler* scheduler, const ServeOptions& options,
                          const std::vector<SimClientSpec>& specs,
                          uint64_t drain_at_ms, uint64_t max_ms);

}  // namespace server
}  // namespace iqlkit

#endif  // IQLKIT_SERVER_SERVE_LOOP_H_
