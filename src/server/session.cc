#include "server/session.h"

#include <utility>
#include <vector>

namespace iqlkit {
namespace server {

const char* SessionCloseName(SessionClose reason) {
  switch (reason) {
    case SessionClose::kOpen:
      return "open";
    case SessionClose::kPeerClosed:
      return "peer-closed";
    case SessionClose::kIdleTimeout:
      return "idle-timeout";
    case SessionClose::kReadTimeout:
      return "read-timeout";
    case SessionClose::kWriteTimeout:
      return "write-timeout";
    case SessionClose::kProtocolError:
      return "protocol-error";
    case SessionClose::kDrained:
      return "drained";
    case SessionClose::kForced:
      return "forced";
  }
  return "unknown";
}

void TraceSink::Line(uint64_t tick, const std::string& text) {
  if (out_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  (*out_) << "[" << tick << "] " << text << "\n";
}

Session::Session(uint64_t id, ByteStream* stream, Scheduler* scheduler,
                 const SessionOptions& options, TraceSink* trace)
    : id_(id),
      stream_(stream),
      scheduler_(scheduler),
      options_(options),
      trace_(trace) {}

void Session::Trace(uint64_t now_ms, const std::string& text) {
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Line(now_ms, "s" + std::to_string(id_) + " " + text);
  }
}

bool Session::Pump(uint64_t now_ms) {
  if (!open()) return false;
  if (!started_) {
    started_ = true;
    last_inbound_ms_ = now_ms;
    Trace(now_ms, "ACCEPT");
  }

  // Drain request (from SIGTERM or an explicit DRAIN trigger): announce
  // once, stop accepting QUERY frames, keep pumping until every live
  // query has delivered its terminal page.
  if (drain_requested_.load() && !drain_sent_ && state_ != State::kAwaitHello) {
    Frame drain;
    drain.type = FrameType::kDrain;
    drain.body.SetString("reason", "server draining");
    SendFrame(now_ms, drain);
    drain_sent_ = true;
    state_ = State::kDraining;
    Trace(now_ms, "DRAIN announced");
    if (!open()) return false;
  }

  // Inbound: move available bytes into the decoder, then handle every
  // complete frame. Stalls leave the pending bytes for the next pump;
  // resets and torn reads end the session.
  for (;;) {
    std::string chunk;
    auto got = stream_->Read(&chunk, 64 * 1024);
    if (!got.ok()) {
      if (IsStallError(got.status())) break;  // retry next pump
      Trace(now_ms, "READ error: " + got.status().ToString());
      Close(now_ms, SessionClose::kPeerClosed);
      return false;
    }
    if (*got == 0) {
      if (stream_->closed()) {
        Close(now_ms, SessionClose::kPeerClosed);
        return false;
      }
      break;  // no bytes available yet
    }
    decoder_.Feed(chunk);
    for (;;) {
      auto next = decoder_.Next();
      if (!next.ok()) {
        Trace(now_ms, "DECODE error: " + next.status().ToString());
        SendError(now_ms, next.status(), "");
        Close(now_ms, SessionClose::kProtocolError);
        return false;
      }
      if (!next->has_value()) break;
      ++counters_.frames_in;
      last_inbound_ms_ = now_ms;
      partial_pending_ = false;
      HandleFrame(now_ms, **next);
      if (!open()) return false;
    }
  }

  // A frame whose header arrived but whose tail has not: start (or check)
  // the torn-frame clock.
  if (decoder_.buffered() > 0) {
    if (!partial_pending_) {
      partial_pending_ = true;
      partial_since_ms_ = now_ms;
    } else if (now_ms - partial_since_ms_ >= options_.read_timeout_ms) {
      Trace(now_ms, "READ timeout: torn frame");
      Close(now_ms, SessionClose::kReadTimeout);
      return false;
    }
  } else {
    partial_pending_ = false;
  }

  PollQueries(now_ms);
  if (!open()) return false;
  EmitPages(now_ms);
  if (!open()) return false;
  FlushOutbox(now_ms);
  if (!open()) return false;

  // Idle timeout: no completed inbound frame for too long. Queries still
  // in flight do not excuse the client from heartbeating.
  if (now_ms - last_inbound_ms_ >= options_.idle_timeout_ms) {
    Trace(now_ms, "IDLE timeout");
    Close(now_ms, SessionClose::kIdleTimeout);
    return false;
  }

  // Drain completion: everything delivered and flushed.
  if (state_ == State::kDraining && queries_.empty() && outbox_.empty()) {
    Close(now_ms, SessionClose::kDrained);
    return false;
  }
  return open();
}

void Session::HandleFrame(uint64_t now_ms, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      HandleHello(now_ms, frame);
      return;
    case FrameType::kQuery:
      HandleQuery(now_ms, frame);
      return;
    case FrameType::kPage:
      HandlePage(now_ms, frame);
      return;
    case FrameType::kCancel:
      HandleCancel(now_ms, frame);
      return;
    case FrameType::kError:
      // The client reported a failure on its side; log and close cleanly.
      Trace(now_ms, "client ERROR: " + frame.body.StringOr("message", ""));
      Close(now_ms, SessionClose::kPeerClosed);
      return;
    case FrameType::kDrain:
      // DRAIN is server-to-client only.
      SendError(now_ms, NetworkError("DRAIN is not a client frame"), "");
      Close(now_ms, SessionClose::kProtocolError);
      return;
  }
}

void Session::HandleHello(uint64_t now_ms, const Frame& frame) {
  if (frame.body.BoolOr("ping", false)) {
    ++counters_.heartbeats;
    Frame pong;
    pong.type = FrameType::kHello;
    pong.body.SetBool("pong", true);
    SendFrame(now_ms, pong);
    return;
  }
  if (state_ != State::kAwaitHello) {
    SendError(now_ms, NetworkError("duplicate HELLO"), "");
    Close(now_ms, SessionClose::kProtocolError);
    return;
  }
  int64_t version = frame.body.IntOr("version", -1);
  if (version != kWireVersion) {
    SendError(now_ms,
              NetworkError("protocol version mismatch: peer speaks " +
                           std::to_string(version) + ", server speaks " +
                           std::to_string(kWireVersion)),
              "");
    Close(now_ms, SessionClose::kProtocolError);
    return;
  }
  tenant_ = frame.body.StringOr("tenant", "");
  state_ = State::kReady;
  Frame ack;
  ack.type = FrameType::kHello;
  ack.body.SetInt("version", kWireVersion)
      .SetInt("session", static_cast<int64_t>(id_))
      .SetInt("max_inflight", static_cast<int64_t>(options_.max_inflight))
      .SetInt("page_rows", static_cast<int64_t>(options_.page_rows))
      .SetInt("heartbeat_ms",
              static_cast<int64_t>(options_.heartbeat_interval_ms));
  SendFrame(now_ms, ack);
  Trace(now_ms, "HELLO tenant=" + (tenant_.empty() ? "-" : tenant_));
}

void Session::HandleQuery(uint64_t now_ms, const Frame& frame) {
  if (state_ == State::kAwaitHello) {
    SendError(now_ms, NetworkError("QUERY before HELLO"), "");
    Close(now_ms, SessionClose::kProtocolError);
    return;
  }
  auto wire_id = frame.body.GetString("id");
  if (!wire_id.ok()) {
    ++counters_.queries_rejected;
    SendError(now_ms, wire_id.status(), "");
    return;
  }
  auto source = frame.body.GetString("source");
  if (!source.ok()) {
    ++counters_.queries_rejected;
    SendError(now_ms, source.status(), *wire_id);
    return;
  }
  if (queries_.count(*wire_id) != 0) {
    ++counters_.queries_rejected;
    SendError(now_ms,
              AlreadyExistsError("query id '" + *wire_id +
                                 "' is already in flight on this session"),
              *wire_id);
    return;
  }
  if (state_ == State::kDraining || drain_requested_.load()) {
    ++counters_.queries_rejected;
    SendError(now_ms, UnavailableError("session is draining"), *wire_id);
    return;
  }
  if (queries_.size() >= options_.max_inflight) {
    ++counters_.queries_rejected;
    SendError(now_ms,
              OverloadedError("session in-flight quota (" +
                              std::to_string(options_.max_inflight) +
                              ") exceeded"),
              *wire_id);
    return;
  }

  QueryRequest request;
  // Scheduler ids are namespaced by session so two clients using the same
  // wire id never collide in traces or durable directories.
  request.id = "s" + std::to_string(id_) + ":" + *wire_id;
  request.source = *source;
  auto cls = ParseQueryClass(frame.body.StringOr("class", "batch"));
  if (!cls.ok()) {
    ++counters_.queries_rejected;
    SendError(now_ms, cls.status(), *wire_id);
    return;
  }
  request.cls = *cls;
  request.priority = static_cast<int>(frame.body.IntOr("priority", 0));
  int64_t max_steps = frame.body.IntOr("max_steps", 0);
  if (max_steps > 0) {
    request.limits.max_steps_per_stage = static_cast<uint64_t>(max_steps);
  }
  int64_t timeout_ms = frame.body.IntOr("timeout_ms", 0);
  if (timeout_ms > 0) {
    request.limits.deadline_seconds = static_cast<double>(timeout_ms) / 1000.0;
  }
  int64_t max_memory = frame.body.IntOr("max_memory", 0);
  if (max_memory > 0) {
    request.limits.max_memory_bytes = static_cast<uint64_t>(max_memory);
  }
  int64_t reserve = frame.body.IntOr("reserve", 0);
  if (reserve > 0) request.reserve_bytes = static_cast<uint64_t>(reserve);

  auto ticket = scheduler_->Submit(std::move(request));
  if (!ticket.ok()) {
    ++counters_.queries_rejected;
    SendError(now_ms, ticket.status(), *wire_id);
    return;
  }
  LiveQuery live;
  live.ticket = *ticket;
  live.wire_id = *wire_id;
  queries_.emplace(*wire_id, std::move(live));
  ++counters_.queries_accepted;
  Trace(now_ms, "QUERY id=" + *wire_id + " ticket=" + std::to_string(*ticket));
}

void Session::HandlePage(uint64_t now_ms, const Frame& frame) {
  auto wire_id = frame.body.GetString("id");
  if (!wire_id.ok()) {
    SendError(now_ms, wire_id.status(), "");
    return;
  }
  auto it = queries_.find(*wire_id);
  if (it == queries_.end()) {
    SendError(now_ms,
              NotFoundError("no query '" + *wire_id + "' on this session"),
              *wire_id);
    return;
  }
  it->second.pending_want = frame.body.IntOr("want", it->second.next_seq);
}

void Session::HandleCancel(uint64_t now_ms, const Frame& frame) {
  auto wire_id = frame.body.GetString("id");
  if (!wire_id.ok()) {
    SendError(now_ms, wire_id.status(), "");
    return;
  }
  auto it = queries_.find(*wire_id);
  if (it == queries_.end()) {
    SendError(now_ms,
              NotFoundError("no query '" + *wire_id + "' on this session"),
              *wire_id);
    return;
  }
  scheduler_->Cancel(it->second.ticket, "client cancel");
  // Whatever the race resolves to (cancelled, or completed first), push
  // the terminal page without waiting for a credit so the client always
  // sees exactly one terminal frame.
  it->second.push_terminal = true;
  Trace(now_ms, "CANCEL id=" + *wire_id);
}

void Session::PollQueries(uint64_t now_ms) {
  for (auto& [wire_id, live] : queries_) {
    if (live.result_ready) continue;
    auto result = scheduler_->TryWait(live.ticket);
    if (!result.has_value()) continue;
    live.result = std::move(*result);
    live.result_ready = true;
    // Materialize pages: page_rows fact lines each, at least one page so
    // the terminal frame always exists.
    live.pages.clear();
    const std::string& facts = live.result.facts;
    size_t pos = 0;
    std::string page;
    size_t rows = 0;
    while (pos < facts.size()) {
      size_t eol = facts.find('\n', pos);
      size_t end = eol == std::string::npos ? facts.size() : eol + 1;
      page.append(facts, pos, end - pos);
      pos = end;
      if (++rows >= options_.page_rows) {
        live.pages.push_back(std::move(page));
        page.clear();
        rows = 0;
      }
    }
    if (!page.empty() || live.pages.empty()) {
      live.pages.push_back(std::move(page));
    }
    Trace(now_ms, "RESULT id=" + wire_id + " outcome=" +
                      QueryOutcomeName(live.result.outcome) + " pages=" +
                      std::to_string(live.pages.size()));
  }
}

void Session::EmitPages(uint64_t now_ms) {
  // Only enqueues (Pump flushes right after): delivery is counted -- and
  // the query retired -- in FlushOutbox, when the terminal frame actually
  // reaches the stream. A session that dies with the frame still queued
  // abandons the query instead of reporting it delivered.
  for (auto& [wire_id, live] : queries_) {
    if (!live.result_ready || live.terminal_sent) continue;
    int64_t last = static_cast<int64_t>(live.pages.size()) - 1;
    int64_t seq = -1;
    if (live.push_terminal) {
      seq = last;  // cancel/drain: skip straight to the terminal page
    } else if (live.pending_want >= 0) {
      seq = live.pending_want > last ? last : live.pending_want;
    }
    if (seq < 0) continue;
    Frame page;
    page.type = FrameType::kPage;
    page.body.SetString("id", live.wire_id)
        .SetInt("seq", seq)
        .SetString("data", live.pages[static_cast<size_t>(seq)])
        .SetBool("done", seq == last);
    if (seq == last) {
      page.body.SetString("outcome", QueryOutcomeName(live.result.outcome))
          .SetString("code", std::string(StatusCodeName(
                                 live.result.status.code())))
          .SetString("status", live.result.status.ok()
                                   ? ""
                                   : live.result.status.message())
          .SetInt("attempts", live.result.attempts);
    }
    live.pending_want = -1;
    live.push_terminal = false;
    live.next_seq = seq + 1;
    Outgoing out;
    out.bytes = EncodeFrame(page);
    if (seq == last) {
      live.terminal_sent = true;
      out.done_id = wire_id;
      out.outcome = live.result.outcome;
    }
    outbox_.push_back(std::move(out));
    ++counters_.pages_sent;
  }
}

void Session::SendFrame(uint64_t now_ms, const Frame& frame) {
  Outgoing out;
  out.bytes = EncodeFrame(frame);
  outbox_.push_back(std::move(out));
  FlushOutbox(now_ms);
}

void Session::SendError(uint64_t now_ms, const Status& status,
                        const std::string& query_id) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.body.SetString("code", std::string(StatusCodeName(status.code())))
      .SetString("message", status.message());
  if (!query_id.empty()) frame.body.SetString("id", query_id);
  SendFrame(now_ms, frame);
}

void Session::FlushOutbox(uint64_t now_ms) {
  Status wrote = stream_->Flush();
  while (wrote.ok() && !outbox_.empty()) {
    wrote = stream_->Write(outbox_.front().bytes);
    if (wrote.ok()) {
      ++counters_.frames_out;
      if (!outbox_.front().done_id.empty()) {
        switch (outbox_.front().outcome) {
          case QueryOutcome::kCompleted:
            ++counters_.delivered_completed;
            break;
          case QueryOutcome::kTrippedPartial:
            ++counters_.delivered_tripped;
            break;
          case QueryOutcome::kCancelled:
            ++counters_.delivered_cancelled;
            break;
          default:
            ++counters_.delivered_failed;
            break;
        }
        Trace(now_ms, "DONE id=" + outbox_.front().done_id);
        queries_.erase(outbox_.front().done_id);
      }
      outbox_.pop_front();
    }
  }
  if (wrote.ok()) {
    stalled_ = false;
    return;
  }
  if (IsStallError(wrote)) {
    // Slow client: charge the stall against the write budget; the frame
    // stays queued and is retried on the next pump.
    if (!stalled_) {
      stalled_ = true;
      stall_since_ms_ = now_ms;
    } else if (now_ms - stall_since_ms_ >= options_.write_timeout_ms) {
      Trace(now_ms, "WRITE timeout: slow client");
      Close(now_ms, SessionClose::kWriteTimeout);
    }
    return;
  }
  Trace(now_ms, "WRITE error: " + wrote.ToString());
  Close(now_ms, SessionClose::kPeerClosed);
}

void Session::Close(uint64_t now_ms, SessionClose reason) {
  if (!open()) return;
  close_reason_ = reason;
  AbandonLiveQueries();
  stream_->Close();
  Trace(now_ms, "CLOSE reason=" + std::string(SessionCloseName(reason)));
}

void Session::ForceClose(uint64_t now_ms) {
  if (!open()) return;
  Close(now_ms, SessionClose::kForced);
}

void Session::AbandonLiveQueries() {
  for (auto& [wire_id, live] : queries_) {
    // The scheduler still drives the query to a terminal state; the
    // session just will not be there to deliver it.
    scheduler_->Cancel(live.ticket, "session closed");
    ++counters_.abandoned;
  }
  queries_.clear();
}

}  // namespace server
}  // namespace iqlkit
