#ifndef IQLKIT_SERVER_SCHEDULER_H_
#define IQLKIT_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "base/governor.h"
#include "base/result.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "iql/eval.h"
#include "storage/durable.h"

namespace iqlkit {
namespace server {

// Admission class of a query. Interactive queries dispatch ahead of batch
// work at equal priority and are the last preemption victims; each class
// has its own admission quota so a batch backlog can never starve
// interactive admission (and vice versa).
enum class QueryClass : uint8_t { kInteractive = 0, kBatch = 1 };
inline constexpr int kNumQueryClasses = 2;

// Stable lower-case name: "interactive" / "batch".
const char* QueryClassName(QueryClass cls);
Result<QueryClass> ParseQueryClass(std::string_view text);

// One query as submitted to the scheduler: a full IQL source unit plus the
// admission metadata the scheduler plans with.
struct QueryRequest {
  std::string id;      // trace label; must be unique within a scheduler
  std::string source;  // IQL source unit (schema/instance/program blocks)
  QueryClass cls = QueryClass::kBatch;
  int priority = 0;  // higher dispatches first within the backlog
  // Per-query ceilings. The scheduler enforces them through the query's
  // governor and may *tighten* (never loosen) them under global pressure.
  ResourceLimits limits;
  // Admission-time memory reservation: the scheduler books this many bytes
  // of the global budget for the query while it is queued or running.
  // 0 means SchedulerOptions::default_reserve_bytes. Clamped to the
  // query's own max_memory_bytes ceiling when that is set and smaller.
  uint64_t reserve_bytes = 0;
  // Evaluation policies (semi-naive, indexing, choose policy, ...).
  // num_threads is forced to 1: scheduler concurrency comes from running
  // many queries at once on the shared pool, and a serial inner evaluation
  // makes byte-identity with a standalone serial run immediate. governor,
  // partial, cancel, metrics, trace, and durability are overwritten per
  // attempt.
  EvalOptions eval;
};

// Terminal classification of a submitted query. Every admitted query ends
// in exactly one of the completed, tripped, failed, or cancelled states;
// rejection happens at Submit time (the ticket is never issued).
enum class QueryOutcome : uint8_t {
  kCompleted = 0,       // clean fixpoint; `facts` is the output instance
  kTrippedPartial = 1,  // governor trip; `facts` is the rolled-back partial
  kRejected = 2,        // never admitted (QUEUE_FULL / OVERLOAD)
  kFailed = 3,          // non-trip error (parse/type/injected dispatch fault)
  kCancelled = 4,       // Cancel()ed by the caller, or shed by a drain
};
const char* QueryOutcomeName(QueryOutcome outcome);

struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kFailed;
  Status status;      // Ok for kCompleted; the final error otherwise
  std::string facts;  // WriteFacts of the output or of the rollback partial
  EvalStats stats;    // last attempt's statistics
  int attempts = 0;   // evaluation attempts consumed (1 = no retries)
  bool preempted = false;  // a scheduler preemption/degrade hit any attempt
  // Durability (data_dir set): the final attempt continued from persisted
  // state instead of starting over. resume_stage/resume_step are where that
  // attempt picked up -- stats.steps counts only the steps it executed, so
  // resume_step + stats.steps for the resumed stage equals the step count
  // of an uninterrupted run (the never-re-derives assertion).
  bool resumed = false;
  uint32_t resume_stage = 0;
  uint64_t resume_step = 0;
  // Non-empty when durable storage degraded to in-memory evaluation (dir
  // unwritable, or a tolerated write error): the structured warning text.
  std::string storage_warning;
  uint64_t submit_tick = 0;
  uint64_t finish_tick = 0;
};

struct SchedulerOptions {
  // Concurrently running queries = workers of the shared task pool.
  size_t workers = 4;
  // Bound on *waiting* (admitted, not yet running) queries; submissions
  // beyond it are rejected with QUEUE_FULL. Backpressure, not OOM.
  size_t queue_capacity = 64;
  // Per-class cap on waiting + running queries; 0 = no quota for that
  // class. Submissions beyond the quota are rejected with OVERLOAD.
  size_t class_quota[kNumQueryClasses] = {0, 0};
  // Global memory budget in bytes across every running query's accountant
  // plus every waiting query's reservation; 0 = unlimited. When the sum
  // crosses the budget the scheduler degrades (tightens) or preempts
  // running queries, never the allocator.
  uint64_t global_memory_budget = 0;
  // Reservation booked for queries that leave reserve_bytes at 0.
  uint64_t default_reserve_bytes = 1 << 20;
  // Retry policy for transient failures (injected faults, preemption,
  // degradation-induced memory trips): up to max_retries re-runs with
  // jittered exponential backoff (base * 2^attempt, jitter in [0.5, 1.5)
  // seeded from `seed` and the ticket, so runs are reproducible).
  int max_retries = 2;
  double retry_base_seconds = 0.05;
  uint64_t seed = 0;
  // Deterministic mode: no worker threads, no wall clock. Queries execute
  // serially in admission-priority order from RunUntilIdle()/Wait() on the
  // caller's thread; time is a virtual tick counter (1 tick = 1ms) that
  // only advances on attempt boundaries and backoff waits, and every
  // query's poll stride is forced to 1 so preemption and degradation land
  // at deterministic candidate counts. A given submission sequence then
  // produces a byte-identical event trace for a given seed.
  bool deterministic = false;
  // Event log: one line per scheduler event (ADMIT/REJECT/START/DEGRADE/
  // PREEMPT/TRIP/RETRY/COMPLETE/FAIL), each stamped with the tick.
  std::ostream* trace = nullptr;
  // Durable evaluation root. When non-empty, every query gets a directory
  // `<data_dir>/q-<id>` holding a checksummed snapshot of its input, a WAL
  // frame per committed fixpoint step, and a final snapshot of its output.
  // Each attempt recovers from that directory before evaluating, so a
  // retried (preempted, degraded, crashed, storage-faulted) query resumes
  // from its last committed step instead of re-deriving, and a finished
  // query re-submitted after a restart is served from its final snapshot.
  // Storage write failures surface as kUnavailable and are retried with
  // backoff like any transient; an unwritable dir degrades that query to
  // plain in-memory evaluation with QueryResult::storage_warning set.
  std::string data_dir;
  // Policy knobs (fsync, degrade-on-write-error) for the directories above.
  storage::DurabilityConfig durability;
};

// The concurrent-query scheduler: owns one shared TaskPool and a global
// memory budget, and multiplexes many evaluations through their per-query
// Governors (see DESIGN.md "Concurrent scheduling").
//
//   admit ----> queue ----> run ----> complete
//     |           |          |  \---> trip ----> retry (transient) --> queue
//     \--> REJECT (QUEUE_FULL / OVERLOAD)    \--> partial (organic)
//
// Thread-safe in real mode: Submit/Wait/counters may be called from any
// thread. In deterministic mode the scheduler is single-threaded by
// construction -- submit everything, then drive with RunUntilIdle().
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options);
  // Drains: blocks until every admitted query is terminal.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Admission: bounded queue + per-class quota + reservation-fits check.
  // Returns a ticket for Wait(), or a structured rejection:
  //   QUEUE_FULL -- the waiting queue is at capacity
  //   OVERLOAD   -- class quota exceeded, or the reservation can never fit
  // Rejections are immediate and never block; callers are expected to
  // back off and resubmit.
  Result<uint64_t> Submit(QueryRequest request);

  // Blocks until the query is terminal and returns its result. In
  // deterministic mode this drives RunUntilIdle() first.
  QueryResult Wait(uint64_t ticket);

  // Non-blocking peek: the result once the query is terminal, nullopt
  // while it is still queued or running (or the ticket is unknown). Never
  // drives execution -- deterministic-mode callers run the scheduler via
  // RunUntilIdle() between polls.
  std::optional<QueryResult> TryWait(uint64_t ticket);

  // Cancels a submitted query: a queued entry goes terminal immediately
  // (outcome kCancelled); a running entry is preempted at its next poll
  // and lands terminal without retry, its rollback partial checkpointed
  // when durable storage is attached. Returns false when the ticket is
  // unknown or already terminal. `reason` is carried in the final Status.
  bool Cancel(uint64_t ticket, const std::string& reason);

  // Graceful-shutdown entry points (see serve_loop.h for the state
  // machine that drives them):
  //   BeginDrain  -- stop admitting (Submit rejects with UNAVAILABLE) and
  //                  stop retrying: every in-flight attempt's next end is
  //                  terminal. Running queries keep running -- the caller
  //                  owns the grace window.
  //   PreemptAll  -- end the grace window: preempt every running query
  //                  (their partials checkpoint via the durability path)
  //                  and cancel every queued one.
  void BeginDrain();
  void PreemptAll(const std::string& reason);
  bool draining() const;

  // Runs until no query is waiting or running. In deterministic mode this
  // is the execution driver; in real mode it just blocks for quiescence.
  void RunUntilIdle();

  struct Counters {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_overload = 0;
    uint64_t completed = 0;
    uint64_t tripped_partial = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t rejected_draining = 0;  // Submit() while draining
    uint64_t retries = 0;
    uint64_t degradations = 0;  // TightenMemory interventions
    uint64_t preemptions = 0;   // Preempt() interventions
  };
  Counters counters() const;

  // Current tick: virtual ticks in deterministic mode, milliseconds since
  // construction otherwise.
  uint64_t now_ticks() const;

 private:
  enum class State : uint8_t { kQueued, kRunning, kDone };

  struct Entry {
    uint64_t ticket = 0;
    QueryRequest request;
    uint64_t reserve_bytes = 0;  // resolved reservation
    State state = State::kQueued;
    uint64_t eligible_tick = 0;  // backoff gate for retries
    int attempts = 0;
    bool degraded = false;   // this attempt was tightened
    bool preempted = false;  // this attempt was preempted
    bool ever_intervened = false;
    bool cancel_requested = false;  // Cancel()/drain: next end is terminal
    std::string cancel_reason;
    std::shared_ptr<Governor> governor;  // live while running
    QueryResult result;
    uint64_t submit_tick = 0;
  };

  // What one evaluation attempt produced (built outside the lock).
  struct AttemptEnd {
    Status status;
    std::string facts;
    EvalStats stats;
    bool sched_fault = false;  // FaultSite::kScheduler fired at dispatch
    bool resumed = false;      // continued from persisted state
    uint32_t resume_stage = 0;
    uint64_t resume_step = 0;
    std::string storage_warning;  // degraded / unusable persisted state
  };

  uint64_t NowTicksLocked() const;
  void TraceLocked(const std::string& line);
  void CancelQueuedLocked(Entry* entry, const std::string& reason);
  // Picks the best dispatchable entry (priority desc, interactive first,
  // ticket asc, eligible_tick <= now); null when none.
  Entry* NextRunnableLocked();
  uint64_t EarliestEligibleLocked() const;  // UINT64_MAX when none waiting
  void DispatchLocked(std::unique_lock<std::mutex>& lock);
  void StartAttemptLocked(Entry* entry);
  AttemptEnd ExecuteAttempt(Entry* entry);  // runs WITHOUT the lock
  void FinishAttempt(Entry* entry, AttemptEnd end);
  // Global-pressure sampling point, called from every running governor's
  // full check (see Governor::set_pressure_hook).
  void PressureCheck();
  void TimekeeperLoop();

  SchedulerOptions options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // terminal transitions + quiescence
  std::condition_variable retry_cv_;  // wakes the timekeeper
  std::map<uint64_t, std::unique_ptr<Entry>> entries_;
  uint64_t next_ticket_ = 1;
  uint64_t virtual_now_ = 0;  // deterministic mode only
  size_t waiting_ = 0;        // entries in State::kQueued
  size_t running_ = 0;        // entries in State::kRunning
  size_t class_load_[kNumQueryClasses] = {0, 0};  // waiting + running
  Counters counters_;
  bool shutdown_ = false;
  bool draining_ = false;

  std::optional<TaskPool> pool_;       // real mode only
  std::optional<std::thread> timekeeper_;  // real mode only
};

}  // namespace server
}  // namespace iqlkit

#endif  // IQLKIT_SERVER_SCHEDULER_H_
