#include "server/serve_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "base/fault_injection.h"

namespace iqlkit {
namespace server {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void RecordClose(ServeStats* stats, const Session& session) {
  const SessionCounters& c = session.counters();
  SessionCounters& t = stats->totals;
  t.frames_in += c.frames_in;
  t.frames_out += c.frames_out;
  t.heartbeats += c.heartbeats;
  t.queries_accepted += c.queries_accepted;
  t.queries_rejected += c.queries_rejected;
  t.pages_sent += c.pages_sent;
  t.delivered_completed += c.delivered_completed;
  t.delivered_tripped += c.delivered_tripped;
  t.delivered_cancelled += c.delivered_cancelled;
  t.delivered_failed += c.delivered_failed;
  t.abandoned += c.abandoned;
  ++stats->close_reasons[SessionCloseName(session.close_reason())];
}

}  // namespace

// ---- FdStream --------------------------------------------------------------

Result<size_t> FdStream::Read(std::string* out, size_t max_bytes) {
  if (closed_) return size_t{0};
  char buf[16 * 1024];
  size_t total = 0;
  while (total < max_bytes) {
    size_t want = max_bytes - total;
    if (want > sizeof(buf)) want = sizeof(buf);
    ssize_t n = recv(fd_, buf, want, 0);
    if (n > 0) {
      out->append(buf, static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      closed_ = true;  // clean EOF from the peer
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closed_ = true;
    return NetworkError(Errno("recv failed"));
  }
  return total;
}

Status FdStream::Write(std::string_view bytes) {
  if (closed_) return NetworkError("connection is closed");
  Status flushed = Flush();
  if (!flushed.ok()) return flushed;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Accept the tail: it is queued here and drained by Flush(), so the
      // caller never retries (and never duplicates) a partially-sent frame.
      pending_.assign(bytes.substr(off));
      return Status::Ok();
    }
    if (n < 0 && errno == EINTR) continue;
    closed_ = true;
    return NetworkError(Errno("send failed"));
  }
  return Status::Ok();
}

Status FdStream::Flush() {
  while (!pending_.empty()) {
    ssize_t n = send(fd_, pending_.data(), pending_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      pending_.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return NetworkError("write stall: socket buffer full (" +
                          std::to_string(pending_.size()) +
                          " bytes pending)");
    }
    if (n < 0 && errno == EINTR) continue;
    closed_ = true;
    return NetworkError(Errno("send failed"));
  }
  return Status::Ok();
}

void FdStream::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  closed_ = true;
}

// ---- TcpServer -------------------------------------------------------------

TcpServer::TcpServer(Scheduler* scheduler, const ServeOptions& options)
    : scheduler_(scheduler),
      options_(options),
      trace_(options.trace),
      start_(std::chrono::steady_clock::now()) {}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

uint64_t TcpServer::NowMs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

Result<uint16_t> TcpServer::Listen(uint16_t port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return NetworkError(Errno("socket failed"));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return NetworkError(Errno("bind failed"));
  }
  if (listen(listen_fd_, 64) != 0) {
    return NetworkError(Errno("listen failed"));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return NetworkError(Errno("getsockname failed"));
  }
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);
  return port_;
}

void TcpServer::ConnectionLoop(int fd, uint64_t session_id) {
  SetNonBlocking(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  FdStream raw(fd);
  FaultyStream stream(&raw);
  Session session(session_id, &stream, scheduler_, options_.session, &trace_);
  for (;;) {
    uint64_t now = NowMs();
    if (force_close_.load()) session.ForceClose(now);
    if (drain_requested_.load()) session.RequestDrain();
    if (!session.Pump(now)) break;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    poll(&pfd, 1, 2);  // wake on inbound bytes, peer close, or 2ms tick
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    RecordClose(&stats_, session);
  }
  live_sessions_.fetch_sub(1);
}

ServeStats TcpServer::Serve() {
  uint64_t next_session_id = 1;
  while (!drain_requested_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Refusal: injected (FaultSite::kNetwork drawn at the accept site,
    // like every other refused-accept a client might see) or the
    // connection ceiling.
    bool refused = FaultInjector::Global().ShouldFail(FaultSite::kNetwork);
    const char* why = refused ? "injected" : "max-sessions";
    if (!refused && live_sessions_.load() >= options_.max_sessions) {
      refused = true;
    }
    if (refused) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions_refused;
      trace_.Line(NowMs(), "REFUSE reason=" + std::string(why));
      continue;
    }
    uint64_t id = next_session_id++;
    live_sessions_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_accepted;
    threads_.emplace_back([this, fd, id] { ConnectionLoop(fd, id); });
  }

  // Drain: stop accepting, stop admitting, let the grace window run, then
  // preempt what is still running (partials checkpoint via durability)
  // and give sessions one more window to deliver terminal pages.
  ::close(listen_fd_);
  listen_fd_ = -1;
  trace_.Line(NowMs(), "DRAIN begin");
  scheduler_->BeginDrain();
  uint64_t deadline = NowMs() + options_.drain_grace_ms;
  while (live_sessions_.load() > 0 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (live_sessions_.load() > 0) {
    trace_.Line(NowMs(), "DRAIN preempt");
    scheduler_->PreemptAll("server drain");
    deadline = NowMs() + options_.drain_grace_ms;
    while (live_sessions_.load() > 0 && NowMs() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (live_sessions_.load() > 0) {
    trace_.Line(NowMs(), "DRAIN force-close");
    force_close_.store(true);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
  trace_.Line(NowMs(), "DRAIN done");
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---- deterministic simulation ----------------------------------------------

namespace {

// One scripted in-process client. Single-threaded with the serve loop: the
// step function runs to quiescence against the bounded duplex each tick.
class SimClient {
 public:
  SimClient(const SimClientSpec& spec, const ServeOptions& options)
      : spec_(spec),
        options_(options),
        stream_(&duplex_, /*server_side=*/false),
        sent_(spec.queries.size(), false),
        cancelled_(spec.queries.size(), false) {}

  MemoryDuplex* duplex() { return &duplex_; }
  const SimClientReport& report() const { return report_; }
  SimClientReport* mutable_report() { return &report_; }
  bool done() const { return done_; }

  void Step(uint64_t now_ms) {
    if (done_) return;
    if (report_.refused) {
      done_ = true;
      return;
    }
    if (!hello_sent_) {
      Frame hello;
      hello.type = FrameType::kHello;
      hello.body.SetInt("version", kWireVersion)
          .SetString("tenant", spec_.tenant);
      Send(hello);
      hello_sent_ = true;
    }
    if (spec_.disconnect_at_ms > 0 && now_ms >= spec_.disconnect_at_ms) {
      stream_.Close();
      done_ = true;
      return;
    }
    ReadFrames(now_ms);
    if (done_) return;
    if (hello_acked_ && !report_.drained) {
      for (size_t i = 0; i < spec_.queries.size(); ++i) {
        const SimQuery& q = spec_.queries[i];
        if (sent_[i] || q.at_ms > now_ms) continue;
        Frame query;
        query.type = FrameType::kQuery;
        query.body.SetString("id", q.id)
            .SetString("source", q.source)
            .SetString("class", q.cls)
            .SetInt("priority", q.priority);
        Send(query);
        Frame first_page;
        first_page.type = FrameType::kPage;
        first_page.body.SetString("id", q.id).SetInt("want", 0);
        Send(first_page);
        sent_[i] = true;
      }
    }
    for (size_t i = 0; i < spec_.queries.size(); ++i) {
      const SimQuery& q = spec_.queries[i];
      if (!sent_[i] || cancelled_[i] || q.cancel_at_ms == 0 ||
          q.cancel_at_ms > now_ms) {
        continue;
      }
      if (report_.terminal.count(q.id) != 0) continue;  // already terminal
      Frame cancel;
      cancel.type = FrameType::kCancel;
      cancel.body.SetString("id", q.id);
      Send(cancel);
      cancelled_[i] = true;
    }
    // Heartbeat at half the advertised cadence so long-running queries do
    // not idle the session out.
    if (hello_acked_ && heartbeat_ms_ > 0 &&
        now_ms - last_send_ms_ >= heartbeat_ms_ / 2) {
      Frame ping;
      ping.type = FrameType::kHello;
      ping.body.SetBool("ping", true);
      Send(ping);
      last_send_ms_ = now_ms;
    }
    // Finished: every scripted query is terminal and no disconnect or
    // drain keeps the session open for us.
    if (hello_acked_ && AllTerminal() && spec_.disconnect_at_ms == 0) {
      stream_.Close();
      done_ = true;
    }
  }

 private:
  bool AllTerminal() const {
    for (const SimQuery& q : spec_.queries) {
      if (report_.terminal.count(q.id) == 0) return false;
    }
    return true;
  }

  void Send(const Frame& frame) {
    if (!stream_.Write(EncodeFrame(frame)).ok()) done_ = true;
  }

  void ReadFrames(uint64_t now_ms) {
    (void)now_ms;
    for (;;) {
      std::string chunk;
      auto got = stream_.Read(&chunk, 64 * 1024);
      if (!got.ok() || *got == 0) {
        if (got.ok() && *got == 0 && stream_.closed()) done_ = true;
        break;
      }
      decoder_.Feed(chunk);
    }
    for (;;) {
      auto next = decoder_.Next();
      if (!next.ok()) {  // torn frame from an injected fault
        done_ = true;
        return;
      }
      if (!next->has_value()) return;
      const Frame& frame = **next;
      switch (frame.type) {
        case FrameType::kHello:
          if (frame.body.BoolOr("pong", false)) break;
          hello_acked_ = true;
          heartbeat_ms_ =
              static_cast<uint64_t>(frame.body.IntOr("heartbeat_ms", 10000));
          break;
        case FrameType::kPage: {
          ++report_.pages;
          std::string id = frame.body.StringOr("id", "");
          report_.data[id] += frame.body.StringOr("data", "");
          if (frame.body.BoolOr("done", false)) {
            report_.terminal[id] =
                "outcome:" + frame.body.StringOr("outcome", "?");
          } else {
            Frame want;
            want.type = FrameType::kPage;
            want.body.SetString("id", id)
                .SetInt("want", frame.body.IntOr("seq", 0) + 1);
            Send(want);
          }
          break;
        }
        case FrameType::kError: {
          std::string id = frame.body.StringOr("id", "");
          if (!id.empty()) {
            report_.terminal[id] = "error:" + frame.body.StringOr("code", "?");
          }
          break;
        }
        case FrameType::kDrain:
          report_.drained = true;
          break;
        default:
          break;
      }
    }
  }

  SimClientSpec spec_;
  ServeOptions options_;
  MemoryDuplex duplex_;
  MemoryStream stream_;
  FrameDecoder decoder_;
  SimClientReport report_;
  bool hello_sent_ = false;
  bool hello_acked_ = false;
  bool done_ = false;
  uint64_t heartbeat_ms_ = 0;
  uint64_t last_send_ms_ = 0;
  std::vector<bool> sent_;
  std::vector<bool> cancelled_;
};

}  // namespace

SimOutcome ServeSimulated(Scheduler* scheduler, const ServeOptions& options,
                          const std::vector<SimClientSpec>& specs,
                          uint64_t drain_at_ms, uint64_t max_ms) {
  SimOutcome outcome;
  TraceSink trace(options.trace);

  std::vector<std::unique_ptr<SimClient>> clients;
  std::vector<std::unique_ptr<FaultyStream>> streams;
  std::vector<std::unique_ptr<MemoryStream>> server_ends;
  std::vector<std::unique_ptr<Session>> sessions;
  uint64_t next_session_id = 1;
  for (const SimClientSpec& spec : specs) {
    clients.push_back(std::make_unique<SimClient>(spec, options));
    SimClient* client = clients.back().get();
    // Refusal draws happen at the (virtual) accept site, in client order,
    // so the sequence of injector draws is deterministic.
    bool refused = FaultInjector::Global().ShouldFail(FaultSite::kNetwork) ||
                   sessions.size() >= options.max_sessions;
    if (refused) {
      client->mutable_report()->refused = true;
      client->duplex()->c2s.Close();
      client->duplex()->s2c.Close();
      ++outcome.stats.sessions_refused;
      trace.Line(0, "REFUSE client=" + std::to_string(clients.size() - 1));
      server_ends.push_back(nullptr);
      streams.push_back(nullptr);
      sessions.push_back(nullptr);
      continue;
    }
    server_ends.push_back(
        std::make_unique<MemoryStream>(client->duplex(), /*server_side=*/true));
    streams.push_back(std::make_unique<FaultyStream>(server_ends.back().get()));
    sessions.push_back(std::make_unique<Session>(
        next_session_id++, streams.back().get(), scheduler, options.session,
        &trace));
    ++outcome.stats.sessions_accepted;
  }

  bool drained = false;
  for (uint64_t now = 0; now < max_ms; ++now) {
    if (drain_at_ms > 0 && now == drain_at_ms && !drained) {
      drained = true;
      trace.Line(now, "DRAIN begin");
      scheduler->BeginDrain();
      // In deterministic mode attempts run atomically inside
      // RunUntilIdle(), so nothing is mid-run here: PreemptAll sheds the
      // *queued* backlog and sessions deliver what already finished.
      scheduler->PreemptAll("server drain");
      for (auto& session : sessions) {
        if (session != nullptr) session->RequestDrain();
      }
    }
    bool any_open = false;
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->Step(now);
      if (sessions[i] != nullptr && sessions[i]->open()) {
        sessions[i]->Pump(now);
      }
      // Everything submitted this tick runs to a terminal state before
      // the clients observe the next tick: deterministic interleaving.
      scheduler->RunUntilIdle();
      if (sessions[i] != nullptr && sessions[i]->open()) {
        sessions[i]->Pump(now);
        any_open = any_open || sessions[i]->open();
      }
      any_open = any_open || !clients[i]->done();
    }
    if (!any_open) break;
  }
  for (auto& session : sessions) {
    if (session != nullptr && session->open()) session->ForceClose(max_ms);
  }
  for (size_t i = 0; i < clients.size(); ++i) {
    if (sessions[i] != nullptr) RecordClose(&outcome.stats, *sessions[i]);
    outcome.clients.push_back(clients[i]->report());
  }
  return outcome;
}

}  // namespace server
}  // namespace iqlkit
