#include "server/scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "base/fault_injection.h"
#include "iql/parser.h"
#include "model/instance.h"
#include "model/universe.h"

namespace iqlkit {
namespace server {
namespace {

// SplitMix64 finalizer (same mix the fault injector uses): turns
// (seed, ticket, attempt) into reproducible backoff jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kNoTick = std::numeric_limits<uint64_t>::max();

// Filesystem-safe per-query directory name under SchedulerOptions::data_dir.
std::string QueryDirName(const std::string& id) {
  std::string out = "q-";
  for (char c : id) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += safe ? c : '_';
  }
  return out;
}

}  // namespace

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kBatch:
      return "batch";
  }
  return "batch";
}

Result<QueryClass> ParseQueryClass(std::string_view text) {
  if (text == "interactive") return QueryClass::kInteractive;
  if (text == "batch") return QueryClass::kBatch;
  return InvalidArgumentError("unknown query class '" + std::string(text) +
                              "' (want interactive|batch)");
}

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kCompleted:
      return "completed";
    case QueryOutcome::kTrippedPartial:
      return "tripped-partial";
    case QueryOutcome::kRejected:
      return "rejected";
    case QueryOutcome::kFailed:
      return "failed";
    case QueryOutcome::kCancelled:
      return "cancelled";
  }
  return "failed";
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  if (options_.workers == 0) options_.workers = 1;
  if (!options_.deterministic) {
    pool_.emplace(options_.workers);
    timekeeper_.emplace([this] { TimekeeperLoop(); });
  }
}

Scheduler::~Scheduler() {
  if (options_.deterministic) {
    RunUntilIdle();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ == 0 && running_ == 0; });
    shutdown_ = true;
  }
  retry_cv_.notify_all();
  if (timekeeper_.has_value()) timekeeper_->join();
  pool_.reset();  // joins the workers (queue is already drained)
}

uint64_t Scheduler::NowTicksLocked() const {
  if (options_.deterministic) return virtual_now_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void Scheduler::TraceLocked(const std::string& line) {
  if (options_.trace == nullptr) return;
  *options_.trace << "T" << NowTicksLocked() << " " << line << "\n";
}

Result<uint64_t> Scheduler::Submit(QueryRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  ++counters_.submitted;
  if (draining_) {
    ++counters_.rejected_draining;
    TraceLocked("REJECT id=" + request.id + " reason=DRAINING");
    return UnavailableError(
        "scheduler is draining; not accepting new queries");
  }
  for (const auto& [ticket, entry] : entries_) {
    if (entry->request.id == request.id) {
      return InvalidArgumentError("duplicate query id '" + request.id + "'");
    }
  }
  int cls = static_cast<int>(request.cls);
  uint64_t reserve = request.reserve_bytes != 0
                         ? request.reserve_bytes
                         : options_.default_reserve_bytes;
  if (request.limits.max_memory_bytes > 0) {
    reserve = std::min(reserve, request.limits.max_memory_bytes);
  }
  // Admission checks, cheapest-signal first. Rejections are structured
  // backpressure: the caller learns *why* and can back off, instead of the
  // process learning via OOM.
  if (options_.class_quota[cls] > 0 &&
      class_load_[cls] >= options_.class_quota[cls]) {
    ++counters_.rejected_overload;
    TraceLocked("REJECT id=" + request.id + " reason=OVERLOAD detail=" +
                std::string(QueryClassName(request.cls)) + "-quota");
    return OverloadedError(
        "class '" + std::string(QueryClassName(request.cls)) + "' quota of " +
        std::to_string(options_.class_quota[cls]) +
        " queries exceeded; retry when the backlog drains");
  }
  if (waiting_ >= options_.queue_capacity) {
    ++counters_.rejected_queue_full;
    TraceLocked("REJECT id=" + request.id + " reason=QUEUE_FULL");
    return QueueFullError("admission queue at capacity " +
                          std::to_string(options_.queue_capacity) +
                          "; retry with backoff");
  }
  if (options_.global_memory_budget > 0 &&
      reserve > options_.global_memory_budget) {
    ++counters_.rejected_overload;
    TraceLocked("REJECT id=" + request.id + " reason=OVERLOAD detail=reserve");
    return OverloadedError(
        "memory reservation of " + std::to_string(reserve) +
        " bytes can never fit the global budget of " +
        std::to_string(options_.global_memory_budget) + " bytes");
  }
  uint64_t ticket = next_ticket_++;
  auto entry = std::make_unique<Entry>();
  entry->ticket = ticket;
  entry->request = std::move(request);
  entry->reserve_bytes = reserve;
  entry->state = State::kQueued;
  entry->submit_tick = NowTicksLocked();
  entry->eligible_tick = entry->submit_tick;
  ++waiting_;
  ++class_load_[cls];
  ++counters_.admitted;
  TraceLocked("ADMIT id=" + entry->request.id + " class=" +
              QueryClassName(entry->request.cls) +
              " priority=" + std::to_string(entry->request.priority) +
              " reserve=" + std::to_string(reserve));
  Entry* raw = entry.get();
  entries_.emplace(ticket, std::move(entry));
  (void)raw;
  if (!options_.deterministic) {
    DispatchLocked(lock);
    retry_cv_.notify_all();
  }
  return ticket;
}

Scheduler::Entry* Scheduler::NextRunnableLocked() {
  uint64_t now = NowTicksLocked();
  Entry* best = nullptr;
  for (auto& [ticket, entry] : entries_) {
    if (entry->state != State::kQueued || entry->eligible_tick > now) continue;
    if (best == nullptr) {
      best = entry.get();
      continue;
    }
    // Priority desc, interactive before batch, then submission order.
    // (Ticket order makes the pick total, so the trace is deterministic.)
    int lhs_cls = entry->request.cls == QueryClass::kInteractive ? 0 : 1;
    int rhs_cls = best->request.cls == QueryClass::kInteractive ? 0 : 1;
    auto lhs = std::make_tuple(-entry->request.priority, lhs_cls,
                               entry->ticket);
    auto rhs = std::make_tuple(-best->request.priority, rhs_cls,
                               best->ticket);
    if (lhs < rhs) best = entry.get();
  }
  return best;
}

uint64_t Scheduler::EarliestEligibleLocked() const {
  uint64_t earliest = kNoTick;
  for (const auto& [ticket, entry] : entries_) {
    if (entry->state != State::kQueued) continue;
    earliest = std::min(earliest, entry->eligible_tick);
  }
  return earliest;
}

void Scheduler::StartAttemptLocked(Entry* entry) {
  entry->state = State::kRunning;
  --waiting_;
  ++running_;
  ++entry->attempts;
  entry->degraded = false;
  entry->preempted = false;
  ResourceLimits limits = entry->request.limits;
  // Deterministic mode pins the full-check cadence to every poll, so the
  // candidate count at which a degradation or preemption lands -- and
  // hence the whole trace -- is a pure function of the workload and seed.
  if (options_.deterministic) limits.poll_stride = 1;
  entry->governor = std::make_shared<Governor>(limits);
  entry->governor->set_pressure_hook([this] { PressureCheck(); });
  TraceLocked("START id=" + entry->request.id +
              " attempt=" + std::to_string(entry->attempts));
}

void Scheduler::DispatchLocked(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // held by contract; Post itself never re-enters mu_
  while (running_ < options_.workers) {
    Entry* entry = NextRunnableLocked();
    if (entry == nullptr) break;
    StartAttemptLocked(entry);
    pool_->Post([this, entry] { FinishAttempt(entry, ExecuteAttempt(entry)); });
  }
}

Scheduler::AttemptEnd Scheduler::ExecuteAttempt(Entry* entry) {
  // Runs without the scheduler lock: parsing and evaluation are the long
  // pole, and the pressure hook re-enters the scheduler from this thread.
  AttemptEnd end;
  if (FaultInjector::Global().ShouldFail(FaultSite::kScheduler)) {
    end.status = OverloadedError(
        "scheduler dispatch fault (fault injection); transient");
    end.sched_fault = true;
    return end;
  }
  Universe universe;
  auto unit = ParseUnit(&universe, entry->request.source);
  if (!unit.ok()) {
    end.status = unit.status();
    return end;
  }
  // Durable state, when the scheduler has a data dir. Each attempt re-opens
  // the query's directory and recovers from disk -- the only channel
  // between attempts -- so a retry after a preemption, a storage fault, or
  // a whole-process crash takes the identical path. Re-parsing into a fresh
  // universe deterministically reproduces the symbol numbering of the
  // original attempt, which is what makes a resumed run's WriteFacts output
  // byte-identical to an uninterrupted one.
  std::optional<storage::QueryDurability> durable;
  std::optional<storage::RecoveredRun> recovered;
  if (!options_.data_dir.empty()) {
    durable.emplace(storage::QueryDurability::Open(
        options_.data_dir + "/" + QueryDirName(entry->request.id),
        options_.durability));
    if (!durable->active()) {
      end.storage_warning = durable->warning().message();
      durable.reset();
    }
  }
  if (durable.has_value()) {
    std::shared_ptr<const Schema> schema(std::shared_ptr<const Schema>(),
                                         &unit->schema);
    std::shared_ptr<const Schema> out_schema = schema;
    if (!unit->output_names.empty()) {
      auto projected = unit->schema.Project(unit->output_names);
      if (!projected.ok()) {
        end.status = projected.status();
        return end;
      }
      out_schema =
          std::make_shared<const Schema>(std::move(*projected));
    }
    auto rec = durable->Recover(schema, out_schema, &universe);
    if (rec.ok()) {
      recovered = std::move(*rec);
    } else if (rec.status().code() == StatusCode::kUnavailable) {
      // Transient IO failure while recovering: retry with backoff rather
      // than discarding the persisted prefix.
      end.status = rec.status();
      return end;
    } else {
      // Unusable persisted state (corrupt beyond the torn tail the WAL
      // tolerates, or written under a different schema): start the run
      // over -- BeginRun below rewrites the directory -- instead of
      // failing the query.
      end.storage_warning = rec.status().message();
    }
  }
  if (recovered.has_value() && recovered->complete) {
    // A finished run's final snapshot: serve it without evaluating.
    end.status = Status::Ok();
    end.facts = WriteFacts(recovered->instance);
    end.resumed = true;
    return end;
  }
  Instance input(&unit->schema, &universe);
  bool resuming = recovered.has_value();
  if (resuming) {
    input = std::move(recovered->instance);
    end.resumed = true;
    end.resume_stage = recovered->resume_stage;
    end.resume_step = recovered->resume_step;
  } else {
    end.status = ApplyFacts(*unit, &input);
    if (!end.status.ok()) return end;
    if (durable.has_value()) {
      Status begun = durable->BeginRun(input);
      if (!begun.ok()) {
        end.status = begun;  // kUnavailable: transient, retried
        return end;
      }
      if (!durable->active()) {
        // degrade_on_write_error tolerated a failure: in-memory from here.
        end.storage_warning = durable->warning().message();
        durable.reset();
      }
    }
  }
  EvalOptions options = entry->request.eval;
  // Scheduler concurrency comes from running many queries at once; each
  // evaluation itself is serial, which makes the byte-identity contract
  // with a standalone serial run immediate and keeps one shared pool
  // (instead of one fork/join pool per running query).
  options.num_threads = 1;
  options.governor = entry->governor.get();
  options.cancel = nullptr;
  options.metrics = nullptr;
  options.trace = nullptr;
  options.durability = {};
  if (durable.has_value()) {
    options.durability.sink = &*durable;
    if (resuming) {
      options.durability.resume = true;
      options.durability.resume_stage = recovered->resume_stage;
      options.durability.resume_step = recovered->resume_step;
    }
  }
  std::optional<Instance> partial;
  options.partial = &partial;
  auto result = RunUnit(&universe, &*unit, input, options, &end.stats);
  if (durable.has_value() && !durable->active()) {
    // A mid-run write error was tolerated (degrade_on_write_error); the
    // evaluation finished in memory, but the directory is stale.
    end.storage_warning = durable->warning().message();
    durable.reset();
  }
  if (result.ok()) {
    end.facts = WriteFacts(*result);
    if (durable.has_value()) {
      Status s = durable->Finalize(*result);
      // The answer is already in hand; a failed finalize only costs the
      // next restart a re-evaluation, so record it and serve the result.
      if (!s.ok()) end.storage_warning = s.message();
    }
  } else {
    end.status = result.status();
    if (partial.has_value()) {
      end.facts = WriteFacts(*partial);
      if (durable.has_value()) {
        // Snapshot-on-trip: fold the WAL into a snapshot of the rollback
        // partial so the retry (or a later re-submission) replays nothing.
        Status s = durable->Checkpoint(*partial);
        if (!s.ok() && durable->active()) end.storage_warning = s.message();
      }
    }
  }
  return end;
}

void Scheduler::FinishAttempt(Entry* entry, AttemptEnd end) {
  std::unique_lock<std::mutex> lock(mu_);
  --running_;
  TripReason trip = end.stats.trip;
  Governor* governor = entry->governor.get();
  bool injected_alloc =
      governor != nullptr && governor->accountant()->injected_failure();
  // Transient causes retry; organic trips at the query's own ceilings do
  // not (re-running would hit the same wall). A memory trip is transient
  // exactly when the scheduler caused it (tightened limit) or the fault
  // injector did (the pressure that "eased" is synthetic). A kUnavailable
  // status is durable storage failing out from under the run (torn write,
  // failed fsync, unreadable dir): the retry recovers from the persisted
  // prefix and resumes, so it is transient by construction.
  // A kNetworkError is likewise environmental, not the query's fault
  // (an injected or real wire failure while an attempt touched a remote
  // resource); the retry runs against a healthy connection.
  bool transient =
      end.sched_fault || trip == TripReason::kFault ||
      trip == TripReason::kPreempted ||
      end.status.code() == StatusCode::kUnavailable ||
      end.status.code() == StatusCode::kNetworkError ||
      (trip == TripReason::kMemory &&
       ((governor != nullptr && governor->tightened()) || injected_alloc));
  // A cancelled query never retries (the caller asked it to stop), and a
  // draining scheduler never retries (every attempt's end is terminal so
  // shutdown converges).
  if (entry->cancel_requested || draining_) transient = false;
  if (entry->degraded || entry->preempted) entry->ever_intervened = true;
  entry->governor.reset();
  if (!end.storage_warning.empty()) {
    TraceLocked("STORAGE id=" + entry->request.id + " warn=\"" +
                end.storage_warning + "\"");
  }
  if (end.resumed) {
    TraceLocked("RESUME id=" + entry->request.id +
                " stage=" + std::to_string(end.resume_stage) +
                " step=" + std::to_string(end.resume_step) +
                " attempt=" + std::to_string(entry->attempts));
  }
  if (end.sched_fault) {
    TraceLocked("FAULT id=" + entry->request.id +
                " attempt=" + std::to_string(entry->attempts));
  } else if (trip != TripReason::kNone) {
    TraceLocked("TRIP id=" + entry->request.id + " reason=" +
                TripReasonName(trip) +
                " attempt=" + std::to_string(entry->attempts));
  }
  if (transient && entry->attempts <= options_.max_retries) {
    ++counters_.retries;
    // Jittered exponential backoff: base * 2^(attempt-1) * [0.5, 1.5),
    // reproducible in (seed, ticket, attempt).
    int exponent = std::min(entry->attempts - 1, 20);
    double u = static_cast<double>(
                   Mix64(options_.seed ^ (entry->ticket << 20) ^
                         static_cast<uint64_t>(entry->attempts)) >>
                   11) *
               0x1.0p-53;
    double backoff = options_.retry_base_seconds *
                     static_cast<double>(uint64_t{1} << exponent) * (0.5 + u);
    uint64_t delay =
        std::max<uint64_t>(1, static_cast<uint64_t>(backoff * 1000.0));
    entry->eligible_tick = NowTicksLocked() + delay;
    entry->state = State::kQueued;
    ++waiting_;
    TraceLocked("RETRY id=" + entry->request.id +
                " attempt=" + std::to_string(entry->attempts + 1) +
                " eligible=T" + std::to_string(entry->eligible_tick));
  } else {
    entry->state = State::kDone;
    --class_load_[static_cast<int>(entry->request.cls)];
    QueryResult& result = entry->result;
    result.status = end.status;
    result.facts = std::move(end.facts);
    result.stats = end.stats;
    result.attempts = entry->attempts;
    result.preempted = entry->ever_intervened;
    result.resumed = end.resumed;
    result.resume_stage = end.resume_stage;
    result.resume_step = end.resume_step;
    result.storage_warning = std::move(end.storage_warning);
    result.submit_tick = entry->submit_tick;
    result.finish_tick = NowTicksLocked();
    if (end.status.ok()) {
      // A completion that raced a cancel still counts as completed: the
      // answer is in hand and already checkpointed/finalized.
      result.outcome = QueryOutcome::kCompleted;
      ++counters_.completed;
      TraceLocked("COMPLETE id=" + entry->request.id +
                  " attempts=" + std::to_string(entry->attempts));
    } else if (entry->cancel_requested) {
      result.outcome = QueryOutcome::kCancelled;
      result.status = CancelledError(entry->cancel_reason.empty()
                                         ? "query cancelled"
                                         : entry->cancel_reason);
      ++counters_.cancelled;
      TraceLocked("CANCELLED id=" + entry->request.id +
                  " attempts=" + std::to_string(entry->attempts));
    } else if (trip != TripReason::kNone) {
      result.outcome = QueryOutcome::kTrippedPartial;
      ++counters_.tripped_partial;
      TraceLocked("PARTIAL id=" + entry->request.id + " reason=" +
                  TripReasonName(trip) +
                  " attempts=" + std::to_string(entry->attempts));
    } else {
      result.outcome = QueryOutcome::kFailed;
      ++counters_.failed;
      TraceLocked("FAIL id=" + entry->request.id + " status=" +
                  std::string(StatusCodeName(end.status.code())));
    }
  }
  if (!options_.deterministic) {
    DispatchLocked(lock);
    retry_cv_.notify_all();
  }
  cv_.notify_all();
}

void Scheduler::PressureCheck() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.global_memory_budget == 0) return;
  uint64_t used = 0;
  uint64_t reserved = 0;
  for (const auto& [ticket, entry] : entries_) {
    if (entry->state == State::kRunning && entry->governor != nullptr) {
      used += entry->governor->accountant()->bytes();
    } else if (entry->state == State::kQueued) {
      reserved += entry->reserve_bytes;
    }
  }
  if (used + reserved <= options_.global_memory_budget) return;
  // One intervention per check: the hook fires every full poll, so the
  // loop converges a victim at a time without thrashing. First choice is
  // the runner furthest above its reservation (degrade it back to what it
  // was promised); if every runner is within its promise the backlog is
  // over-admitted and the least valuable runner is shed outright.
  Entry* degrade_victim = nullptr;
  uint64_t worst_overage = 0;
  Entry* shed_victim = nullptr;
  for (auto& [ticket, entry] : entries_) {
    if (entry->state != State::kRunning || entry->governor == nullptr ||
        entry->degraded || entry->preempted) {
      continue;
    }
    uint64_t bytes = entry->governor->accountant()->bytes();
    if (bytes > entry->reserve_bytes &&
        bytes - entry->reserve_bytes >= worst_overage) {
      // >= so later tickets win ties deterministically... prefer the
      // largest overage, oldest ticket on a tie.
      if (degrade_victim == nullptr ||
          bytes - entry->reserve_bytes > worst_overage) {
        degrade_victim = entry.get();
        worst_overage = bytes - entry->reserve_bytes;
      }
    }
    if (shed_victim == nullptr) {
      shed_victim = entry.get();
    } else {
      // Batch before interactive, low priority first, biggest user first,
      // youngest ticket first: shed the least valuable work.
      auto key = [](const Entry* e, uint64_t b) {
        return std::make_tuple(
            e->request.cls == QueryClass::kInteractive ? 1 : 0,
            e->request.priority, -static_cast<int64_t>(b),
            -static_cast<int64_t>(e->ticket));
      };
      uint64_t shed_bytes = shed_victim->governor->accountant()->bytes();
      if (key(entry.get(), bytes) < key(shed_victim, shed_bytes)) {
        shed_victim = entry.get();
      }
    }
  }
  if (degrade_victim != nullptr) {
    degrade_victim->degraded = true;
    ++counters_.degradations;
    uint64_t target = std::max<uint64_t>(degrade_victim->reserve_bytes, 1);
    degrade_victim->governor->TightenMemory(target);
    TraceLocked("DEGRADE id=" + degrade_victim->request.id +
                " memory=" + std::to_string(target));
  } else if (shed_victim != nullptr) {
    shed_victim->preempted = true;
    ++counters_.preemptions;
    shed_victim->governor->Preempt();
    TraceLocked("PREEMPT id=" + shed_victim->request.id);
  }
}

void Scheduler::RunUntilIdle() {
  if (!options_.deterministic) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ == 0 && running_ == 0; });
    return;
  }
  // Deterministic driver: serial execution on this thread, virtual time.
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Entry* entry = NextRunnableLocked();
    if (entry == nullptr) {
      uint64_t next = EarliestEligibleLocked();
      if (next == kNoTick) return;  // no queued work left
      virtual_now_ = std::max(virtual_now_, next);  // sleep is a tick jump
      continue;
    }
    StartAttemptLocked(entry);
    lock.unlock();
    AttemptEnd end = ExecuteAttempt(entry);
    lock.lock();
    ++virtual_now_;  // every attempt costs one virtual millisecond
    lock.unlock();
    FinishAttempt(entry, std::move(end));
    lock.lock();
  }
}

QueryResult Scheduler::Wait(uint64_t ticket) {
  if (options_.deterministic) RunUntilIdle();
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(ticket);
  if (it == entries_.end()) {
    QueryResult missing;
    missing.outcome = QueryOutcome::kFailed;
    missing.status = NotFoundError("unknown ticket " + std::to_string(ticket));
    return missing;
  }
  Entry* entry = it->second.get();
  cv_.wait(lock, [&] { return entry->state == State::kDone; });
  return entry->result;
}

std::optional<QueryResult> Scheduler::TryWait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(ticket);
  if (it == entries_.end() || it->second->state != State::kDone) {
    return std::nullopt;
  }
  return it->second->result;
}

void Scheduler::CancelQueuedLocked(Entry* entry, const std::string& reason) {
  entry->state = State::kDone;
  --waiting_;
  --class_load_[static_cast<int>(entry->request.cls)];
  QueryResult& result = entry->result;
  result.outcome = QueryOutcome::kCancelled;
  result.status = CancelledError(reason);
  result.attempts = entry->attempts;
  result.submit_tick = entry->submit_tick;
  result.finish_tick = NowTicksLocked();
  ++counters_.cancelled;
  TraceLocked("CANCELLED id=" + entry->request.id + " queued");
}

bool Scheduler::Cancel(uint64_t ticket, const std::string& reason) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(ticket);
  if (it == entries_.end()) return false;
  Entry* entry = it->second.get();
  switch (entry->state) {
    case State::kDone:
      return false;
    case State::kQueued:
      CancelQueuedLocked(entry, reason);
      cv_.notify_all();
      return true;
    case State::kRunning:
      // The preemption trip surfaces at the victim's next poll;
      // FinishAttempt sees cancel_requested and lands it terminal (its
      // rollback partial checkpoints when durable storage is attached).
      entry->cancel_requested = true;
      entry->cancel_reason = reason;
      TraceLocked("CANCEL id=" + entry->request.id + " running");
      if (entry->governor != nullptr) entry->governor->Preempt();
      return true;
  }
  return false;
}

void Scheduler::BeginDrain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) return;
  draining_ = true;
  TraceLocked("DRAIN begin");
}

void Scheduler::PreemptAll(const std::string& reason) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& [ticket, entry] : entries_) {
    if (entry->state == State::kQueued) {
      CancelQueuedLocked(entry.get(), reason);
    } else if (entry->state == State::kRunning) {
      entry->cancel_requested = true;
      entry->cancel_reason = reason;
      if (entry->governor != nullptr) entry->governor->Preempt();
    }
  }
  TraceLocked("DRAIN preempt-all");
  cv_.notify_all();
}

bool Scheduler::draining() const {
  std::unique_lock<std::mutex> lock(mu_);
  return draining_;
}

Scheduler::Counters Scheduler::counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return counters_;
}

uint64_t Scheduler::now_ticks() const {
  std::unique_lock<std::mutex> lock(mu_);
  return NowTicksLocked();
}

void Scheduler::TimekeeperLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    uint64_t next = EarliestEligibleLocked();
    uint64_t now = NowTicksLocked();
    if (next != kNoTick && next <= now) {
      // A backoff expired: hand the query to the pool if there is room
      // (otherwise FinishAttempt will dispatch it when a worker frees).
      DispatchLocked(lock);
      next = EarliestEligibleLocked();
      now = NowTicksLocked();
    }
    if (next == kNoTick) {
      retry_cv_.wait(lock);
    } else {
      uint64_t wait_ms = next > now ? next - now : 1;
      retry_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms));
    }
  }
}

}  // namespace server
}  // namespace iqlkit
