#include "model/schema.h"

#include <set>

#include "base/logging.h"

namespace iqlkit {

Status Schema::DeclareRelation(std::string_view name, TypeId type) {
  Symbol sym = universe_->Intern(name);
  if (HasName(sym)) {
    return AlreadyExistsError("name already declared: " + std::string(name));
  }
  relation_types_.emplace(sym, type);
  relation_order_.push_back(sym);
  return Status::Ok();
}

Status Schema::DeclareClass(std::string_view name, TypeId type) {
  Symbol sym = universe_->Intern(name);
  if (HasName(sym)) {
    return AlreadyExistsError("name already declared: " + std::string(name));
  }
  class_types_.emplace(sym, type);
  class_order_.push_back(sym);
  return Status::Ok();
}

TypeId Schema::RelationType(Symbol name) const {
  auto it = relation_types_.find(name);
  return it == relation_types_.end() ? kInvalidType : it->second;
}

TypeId Schema::ClassType(Symbol name) const {
  auto it = class_types_.find(name);
  return it == class_types_.end() ? kInvalidType : it->second;
}

bool Schema::IsSetValuedClass(Symbol name) const {
  TypeId t = ClassType(name);
  if (t == kInvalidType) return false;
  return universe_->types().node(t).kind == TypeKind::kSet;
}

Status Schema::Validate() const {
  const TypePool& types = universe_->types();
  auto check_refs = [&](Symbol owner, TypeId t) -> Status {
    std::set<Symbol> referenced;
    types.CollectClasses(t, &referenced);
    for (Symbol cls : referenced) {
      if (!HasClass(cls)) {
        return TypeError("type of '" + std::string(universe_->Name(owner)) +
                         "' references undeclared class '" +
                         std::string(universe_->Name(cls)) + "'");
      }
    }
    return Status::Ok();
  };
  for (Symbol r : relation_order_) {
    IQL_RETURN_IF_ERROR(check_refs(r, RelationType(r)));
  }
  for (Symbol p : class_order_) {
    IQL_RETURN_IF_ERROR(check_refs(p, ClassType(p)));
  }
  return Status::Ok();
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  Schema sub(universe_);
  for (const std::string& name : names) {
    Symbol sym = universe_->symbols().Find(name);
    if (sym == kInvalidSymbol || !HasName(sym)) {
      return NotFoundError("projection name not in schema: " + name);
    }
    if (HasRelation(sym)) {
      IQL_RETURN_IF_ERROR(sub.DeclareRelation(name, RelationType(sym)));
    } else {
      IQL_RETURN_IF_ERROR(sub.DeclareClass(name, ClassType(sym)));
    }
  }
  IQL_RETURN_IF_ERROR(sub.Validate());
  return sub;
}

std::string Schema::ToString() const {
  const TypePool& types = universe_->types();
  std::string out;
  for (Symbol r : relation_order_) {
    out += "relation ";
    out += universe_->Name(r);
    out += " : ";
    out += types.ToString(RelationType(r));
    out += ";\n";
  }
  for (Symbol p : class_order_) {
    out += "class ";
    out += universe_->Name(p);
    out += " : ";
    out += types.ToString(ClassType(p));
    out += ";\n";
  }
  return out;
}

}  // namespace iqlkit
