#include "model/stats.h"

#include <algorithm>
#include <set>

namespace iqlkit {

size_t ValueBranchingFactor(const ValueStore& values, ValueId v) {
  const ValueNode& n = values.node(v);
  size_t best = 0;
  switch (n.kind) {
    case ValueKind::kConst:
    case ValueKind::kOid:
      return 0;
    case ValueKind::kTuple:
      best = n.fields.size();
      for (const auto& [attr, child] : n.fields) {
        best = std::max(best, ValueBranchingFactor(values, child));
      }
      return best;
    case ValueKind::kSet:
      best = n.elems.size();
      for (ValueId child : n.elems) {
        best = std::max(best, ValueBranchingFactor(values, child));
      }
      return best;
  }
  return best;
}

size_t ValueDepth(const ValueStore& values, ValueId v) {
  const ValueNode& n = values.node(v);
  size_t best = 0;
  for (const auto& [attr, child] : n.fields) {
    best = std::max(best, ValueDepth(values, child));
  }
  for (ValueId child : n.elems) {
    best = std::max(best, ValueDepth(values, child));
  }
  return best + 1;
}

size_t CardinalityEstimator::RelationSize(Symbol r) const {
  return instance_->Relation(r).size();
}

size_t CardinalityEstimator::ClassSize(Symbol p) const {
  return instance_->ClassExtent(p).size();
}

size_t CardinalityEstimator::DistinctAtAttr(Symbol r, Symbol attr) {
  auto key = std::make_pair(r, attr);
  auto it = distinct_cache_.find(key);
  if (it != distinct_cache_.end()) return it->second;
  const ValueStore& values = instance_->universe()->values();
  std::set<ValueId> seen;
  for (ValueId v : instance_->Relation(r)) {
    const ValueNode& n = values.node(v);
    if (n.kind != ValueKind::kTuple) continue;
    for (const auto& [a, child] : n.fields) {
      if (a == attr) {
        seen.insert(child);
        break;
      }
    }
  }
  size_t count = seen.size();
  distinct_cache_.emplace(key, count);
  return count;
}

double CardinalityEstimator::EstimateMatches(
    Symbol r, const std::vector<Symbol>& bound_attrs) {
  double size = static_cast<double>(RelationSize(r));
  if (size == 0) return 0;
  for (Symbol attr : bound_attrs) {
    size_t distinct = DistinctAtAttr(r, attr);
    if (distinct > 1) size /= static_cast<double>(distinct);
  }
  return size < 1.0 ? 1.0 : size;
}

InstanceStats ComputeInstanceStats(const Instance& instance) {
  const ValueStore& values = instance.universe()->values();
  InstanceStats stats;
  stats.ground_facts = instance.GroundFactCount();
  stats.objects = instance.Objects().size();
  stats.constants = instance.ConstantAtoms().size();

  std::set<ValueId> roots;
  for (Symbol r : instance.schema().relation_names()) {
    for (ValueId v : instance.Relation(r)) roots.insert(v);
  }
  for (Symbol p : instance.schema().class_names()) {
    for (Oid o : instance.ClassExtent(p)) {
      auto v = instance.ValueOf(o);
      if (v.has_value()) roots.insert(*v);
    }
  }
  // Count distinct reachable DAG nodes.
  std::set<ValueId> seen;
  std::vector<ValueId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    ValueId v = stack.back();
    stack.pop_back();
    if (!seen.insert(v).second) continue;
    const ValueNode& n = values.node(v);
    for (const auto& [attr, child] : n.fields) stack.push_back(child);
    for (ValueId child : n.elems) stack.push_back(child);
  }
  stats.distinct_values = seen.size();
  for (ValueId v : roots) {
    stats.branching_factor =
        std::max(stats.branching_factor, ValueBranchingFactor(values, v));
    stats.max_value_depth =
        std::max(stats.max_value_depth, ValueDepth(values, v));
  }
  return stats;
}

}  // namespace iqlkit
