#include "model/type_algebra.h"

#include <algorithm>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"

namespace iqlkit {

bool TypeMembership::Contains(TypeId t, ValueId v) {
  uint64_t key = (static_cast<uint64_t>(t) << 32) | v;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  // Insert a tentative value to cut (impossible, since values are finite
  // trees, but cheap) recursion; overwritten below.
  const TypeNode& tn = types_->node(t);
  const ValueNode& vn = NodeOf(v);
  bool result = false;
  switch (tn.kind) {
    case TypeKind::kEmpty:
      result = false;
      break;
    case TypeKind::kBase:
      result = vn.kind == ValueKind::kConst;
      break;
    case TypeKind::kClass:
      result = vn.kind == ValueKind::kOid &&
               classes_->OidInClass(vn.oid, tn.class_name);
      break;
    case TypeKind::kTuple: {
      if (vn.kind != ValueKind::kTuple) {
        result = false;
        break;
      }
      if (star_) {
        // *-interpretation (§6): the value may have extra attributes; every
        // attribute of the type must be present with a member value.
        result = true;
        for (const auto& [attr, ft] : tn.fields) {
          auto fit = std::find_if(
              vn.fields.begin(), vn.fields.end(),
              [&](const auto& f) { return f.first == attr; });
          if (fit == vn.fields.end() || !Contains(ft, fit->second)) {
            result = false;
            break;
          }
        }
      } else {
        // Exact interpretation: identical attribute sets (both are sorted
        // by attribute symbol).
        if (tn.fields.size() != vn.fields.size()) {
          result = false;
          break;
        }
        result = true;
        for (size_t i = 0; i < tn.fields.size(); ++i) {
          if (tn.fields[i].first != vn.fields[i].first ||
              !Contains(tn.fields[i].second, vn.fields[i].second)) {
            result = false;
            break;
          }
        }
      }
      break;
    }
    case TypeKind::kSet: {
      if (vn.kind != ValueKind::kSet) {
        result = false;
        break;
      }
      result = true;
      for (ValueId elem : vn.elems) {
        if (!Contains(tn.children[0], elem)) {
          result = false;
          break;
        }
      }
      break;
    }
    case TypeKind::kUnion: {
      result = false;
      for (TypeId child : tn.children) {
        if (Contains(child, v)) {
          result = true;
          break;
        }
      }
      break;
    }
    case TypeKind::kIntersect: {
      result = true;
      for (TypeId child : tn.children) {
        if (!Contains(child, v)) {
          result = false;
          break;
        }
      }
      break;
    }
  }
  cache_.emplace(key, result);
  return result;
}

namespace {

// Meet of two intersection-reduced types; sound over every oid assignment.
// Exploits the pairwise disjointness of the *top-level value shapes*:
// constants, oids, tuples and sets are syntactically distinct o-values, so
// e.g. ⟦D⟧ and ⟦P⟧ or ⟦P⟧ and ⟦[..]⟧ never share elements.
TypeId Meet(TypePool* pool, TypeId a, TypeId b);

bool IsClassLike(const TypeNode& n) {
  // After reduction, an intersection node's children are class names only.
  return n.kind == TypeKind::kClass || n.kind == TypeKind::kIntersect;
}

TypeId Meet(TypePool* pool, TypeId a, TypeId b) {
  if (a == b) return a;
  const TypeNode& an = pool->node(a);
  const TypeNode& bn = pool->node(b);
  if (an.kind == TypeKind::kEmpty || bn.kind == TypeKind::kEmpty) {
    return pool->Empty();
  }
  // Distribute over unions first: (t1|t2) & s == (t1&s) | (t2&s).
  if (an.kind == TypeKind::kUnion) {
    std::vector<TypeId> members;
    members.reserve(an.children.size());
    for (TypeId child : an.children) members.push_back(Meet(pool, child, b));
    return pool->Union(std::move(members));
  }
  if (bn.kind == TypeKind::kUnion) return Meet(pool, b, a);

  switch (an.kind) {
    case TypeKind::kBase:
      // D & D handled by a == b; D & anything-else is empty (constants are
      // disjoint from oids, tuples, sets).
      return pool->Empty();
    case TypeKind::kClass:
    case TypeKind::kIntersect: {
      if (!IsClassLike(bn)) return pool->Empty();
      // Keep a residual class intersection; under disjoint assignments
      // EliminateIntersection maps it to empty.
      return pool->Intersect2(a, b);
    }
    case TypeKind::kTuple: {
      if (bn.kind != TypeKind::kTuple) return pool->Empty();
      if (an.fields.size() != bn.fields.size()) return pool->Empty();
      std::vector<std::pair<Symbol, TypeId>> fields;
      fields.reserve(an.fields.size());
      for (size_t i = 0; i < an.fields.size(); ++i) {
        if (an.fields[i].first != bn.fields[i].first) return pool->Empty();
        fields.emplace_back(
            an.fields[i].first,
            Meet(pool, an.fields[i].second, bn.fields[i].second));
      }
      return pool->Tuple(std::move(fields));
    }
    case TypeKind::kSet: {
      if (bn.kind != TypeKind::kSet) return pool->Empty();
      // {t} & {s} == {t & s}: a finite set lies in both interpretations
      // iff each element lies in both element types.
      return pool->Set(Meet(pool, an.children[0], bn.children[0]));
    }
    case TypeKind::kEmpty:
    case TypeKind::kUnion:
      break;  // handled above
  }
  IQL_CHECK(false) << "unreachable Meet case";
  return pool->Empty();
}

}  // namespace

TypeId IntersectionReduce(TypePool* pool, TypeId t) {
  const TypeNode n = pool->node(t);  // copy: pool may grow below
  switch (n.kind) {
    case TypeKind::kEmpty:
    case TypeKind::kBase:
    case TypeKind::kClass:
      return t;
    case TypeKind::kTuple: {
      std::vector<std::pair<Symbol, TypeId>> fields = n.fields;
      for (auto& [attr, child] : fields) {
        child = IntersectionReduce(pool, child);
      }
      return pool->Tuple(std::move(fields));
    }
    case TypeKind::kSet:
      return pool->Set(IntersectionReduce(pool, n.children[0]));
    case TypeKind::kUnion: {
      std::vector<TypeId> members = n.children;
      for (TypeId& child : members) child = IntersectionReduce(pool, child);
      return pool->Union(std::move(members));
    }
    case TypeKind::kIntersect: {
      std::vector<TypeId> members = n.children;
      for (TypeId& child : members) child = IntersectionReduce(pool, child);
      TypeId acc = members[0];
      for (size_t i = 1; i < members.size(); ++i) {
        acc = Meet(pool, acc, members[i]);
      }
      return acc;
    }
  }
  return t;
}

namespace {

// Maps residual class-class intersections to empty (valid for disjoint
// assignments) in an already intersection-reduced type.
TypeId EraseResidualIntersections(TypePool* pool, TypeId t) {
  const TypeNode n = pool->node(t);  // copy: pool may grow below
  switch (n.kind) {
    case TypeKind::kEmpty:
    case TypeKind::kBase:
    case TypeKind::kClass:
      return t;
    case TypeKind::kIntersect:
      return pool->Empty();
    case TypeKind::kTuple: {
      std::vector<std::pair<Symbol, TypeId>> fields = n.fields;
      for (auto& [attr, child] : fields) {
        child = EraseResidualIntersections(pool, child);
      }
      return pool->Tuple(std::move(fields));
    }
    case TypeKind::kSet:
      return pool->Set(EraseResidualIntersections(pool, n.children[0]));
    case TypeKind::kUnion: {
      std::vector<TypeId> members = n.children;
      for (TypeId& child : members) {
        child = EraseResidualIntersections(pool, child);
      }
      return pool->Union(std::move(members));
    }
  }
  return t;
}

// Distributes unions upward through tuple constructors.
TypeId DistributeUnions(TypePool* pool, TypeId t) {
  const TypeNode n = pool->node(t);  // copy: pool may grow below
  switch (n.kind) {
    case TypeKind::kEmpty:
    case TypeKind::kBase:
    case TypeKind::kClass:
    case TypeKind::kIntersect:
      return t;
    case TypeKind::kSet:
      return pool->Set(DistributeUnions(pool, n.children[0]));
    case TypeKind::kUnion: {
      std::vector<TypeId> members = n.children;
      for (TypeId& child : members) child = DistributeUnions(pool, child);
      return pool->Union(std::move(members));
    }
    case TypeKind::kTuple: {
      // Normalize fields, then expand the cross product of union fields.
      std::vector<std::pair<Symbol, TypeId>> fields = n.fields;
      for (auto& [attr, child] : fields) {
        child = DistributeUnions(pool, child);
      }
      std::vector<std::vector<std::pair<Symbol, TypeId>>> expansions = {{}};
      for (const auto& [attr, child] : fields) {
        const TypeNode& cn = pool->node(child);
        std::vector<TypeId> options;
        if (cn.kind == TypeKind::kUnion) {
          options = cn.children;
        } else {
          options = {child};
        }
        std::vector<std::vector<std::pair<Symbol, TypeId>>> next;
        next.reserve(expansions.size() * options.size());
        for (const auto& partial : expansions) {
          for (TypeId opt : options) {
            auto extended = partial;
            extended.emplace_back(attr, opt);
            next.push_back(std::move(extended));
          }
        }
        expansions = std::move(next);
      }
      if (expansions.size() == 1) {
        return pool->Tuple(std::move(expansions[0]));
      }
      std::vector<TypeId> members;
      members.reserve(expansions.size());
      for (auto& fieldset : expansions) {
        members.push_back(pool->Tuple(std::move(fieldset)));
      }
      return pool->Union(std::move(members));
    }
  }
  return t;
}

}  // namespace

TypeId EliminateIntersection(TypePool* pool, TypeId t) {
  return EraseResidualIntersections(pool, IntersectionReduce(pool, t));
}

TypeId NormalizeDisjoint(TypePool* pool, TypeId t) {
  return DistributeUnions(pool, EliminateIntersection(pool, t));
}

bool EquivalentOverDisjoint(TypePool* pool, TypeId a, TypeId b) {
  return NormalizeDisjoint(pool, a) == NormalizeDisjoint(pool, b);
}

}  // namespace iqlkit
