#include "model/type.h"

#include <algorithm>

#include "base/hash.h"
#include "base/logging.h"

namespace iqlkit {

namespace {

uint64_t HashNode(const TypeNode& n) {
  uint64_t h = Mix64(static_cast<uint64_t>(n.kind) + 0x51u);
  switch (n.kind) {
    case TypeKind::kEmpty:
    case TypeKind::kBase:
      break;
    case TypeKind::kClass:
      h = HashCombine(h, n.class_name);
      break;
    case TypeKind::kTuple:
      for (const auto& [attr, child] : n.fields) {
        h = HashCombine(h, attr);
        h = HashCombine(h, child);
      }
      break;
    case TypeKind::kSet:
    case TypeKind::kUnion:
    case TypeKind::kIntersect:
      h = HashRange(n.children.begin(), n.children.end(), h);
      break;
  }
  return h;
}

bool SameNode(const TypeNode& a, const TypeNode& b) {
  return a.kind == b.kind && a.class_name == b.class_name &&
         a.fields == b.fields && a.children == b.children;
}

}  // namespace

TypeId TypePool::InternNode(TypeNode node) {
  uint64_t h = HashNode(node);
  auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (SameNode(nodes_[it->second], node)) return it->second;
  }
  IQL_CHECK(nodes_.size() < kInvalidType) << "type pool overflow";
  TypeId id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  index_.emplace(h, id);
  return id;
}

TypeId TypePool::Empty() {
  TypeNode n;
  n.kind = TypeKind::kEmpty;
  return InternNode(std::move(n));
}

TypeId TypePool::Base() {
  TypeNode n;
  n.kind = TypeKind::kBase;
  return InternNode(std::move(n));
}

TypeId TypePool::Class(Symbol name) {
  TypeNode n;
  n.kind = TypeKind::kClass;
  n.class_name = name;
  return InternNode(std::move(n));
}

TypeId TypePool::ClassNamed(std::string_view name) {
  return Class(symbols_->Intern(name));
}

TypeId TypePool::Tuple(std::vector<std::pair<Symbol, TypeId>> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    IQL_CHECK(fields[i - 1].first != fields[i].first)
        << "duplicate tuple-type attribute "
        << symbols_->name(fields[i].first);
  }
  // [..., A: {}, ...] has empty interpretation under every assignment.
  for (const auto& [attr, child] : fields) {
    if (node(child).kind == TypeKind::kEmpty) return Empty();
  }
  TypeNode n;
  n.kind = TypeKind::kTuple;
  n.fields = std::move(fields);
  return InternNode(std::move(n));
}

TypeId TypePool::Set(TypeId elem) {
  // Note: {<empty>} is *not* empty -- it contains the empty set (§2.2).
  TypeNode n;
  n.kind = TypeKind::kSet;
  n.children = {elem};
  return InternNode(std::move(n));
}

TypeId TypePool::Union(std::vector<TypeId> members) {
  std::vector<TypeId> flat;
  for (TypeId m : members) {
    const TypeNode& mn = node(m);
    if (mn.kind == TypeKind::kEmpty) continue;  // {} | t == t
    if (mn.kind == TypeKind::kUnion) {
      flat.insert(flat.end(), mn.children.begin(), mn.children.end());
    } else {
      flat.push_back(m);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return Empty();
  if (flat.size() == 1) return flat[0];
  TypeNode n;
  n.kind = TypeKind::kUnion;
  n.children = std::move(flat);
  return InternNode(std::move(n));
}

TypeId TypePool::Intersect(std::vector<TypeId> members) {
  std::vector<TypeId> flat;
  for (TypeId m : members) {
    const TypeNode& mn = node(m);
    if (mn.kind == TypeKind::kEmpty) return Empty();  // {} & t == {}
    if (mn.kind == TypeKind::kIntersect) {
      flat.insert(flat.end(), mn.children.begin(), mn.children.end());
    } else {
      flat.push_back(m);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  IQL_CHECK(!flat.empty()) << "empty intersection has no interpretation";
  if (flat.size() == 1) return flat[0];
  TypeNode n;
  n.kind = TypeKind::kIntersect;
  n.children = std::move(flat);
  return InternNode(std::move(n));
}

const TypeNode& TypePool::node(TypeId id) const {
  IQL_CHECK(id < nodes_.size()) << "invalid TypeId " << id;
  return nodes_[id];
}

void TypePool::CollectClasses(TypeId t, std::set<Symbol>* out) const {
  const TypeNode& n = node(t);
  switch (n.kind) {
    case TypeKind::kEmpty:
    case TypeKind::kBase:
      return;
    case TypeKind::kClass:
      out->insert(n.class_name);
      return;
    case TypeKind::kTuple:
      for (const auto& [attr, child] : n.fields) CollectClasses(child, out);
      return;
    case TypeKind::kSet:
    case TypeKind::kUnion:
    case TypeKind::kIntersect:
      for (TypeId child : n.children) CollectClasses(child, out);
      return;
  }
}

bool TypePool::IsIntersectionFree(TypeId t) const {
  const TypeNode& n = node(t);
  if (n.kind == TypeKind::kIntersect) return false;
  for (const auto& [attr, child] : n.fields) {
    if (!IsIntersectionFree(child)) return false;
  }
  for (TypeId child : n.children) {
    if (!IsIntersectionFree(child)) return false;
  }
  return true;
}

bool TypePool::IsIntersectionReduced(TypeId t) const {
  const TypeNode& n = node(t);
  if (n.kind == TypeKind::kIntersect) {
    // Below an intersection node, only class names / D / other
    // intersections may occur.
    for (TypeId child : n.children) {
      const TypeNode& cn = node(child);
      if (cn.kind == TypeKind::kTuple || cn.kind == TypeKind::kSet ||
          cn.kind == TypeKind::kUnion) {
        return false;
      }
      if (!IsIntersectionReduced(child)) return false;
    }
    return true;
  }
  for (const auto& [attr, child] : n.fields) {
    if (!IsIntersectionReduced(child)) return false;
  }
  for (TypeId child : n.children) {
    if (!IsIntersectionReduced(child)) return false;
  }
  return true;
}

bool TypePool::ContainsSet(TypeId t) const {
  const TypeNode& n = node(t);
  if (n.kind == TypeKind::kSet) return true;
  for (const auto& [attr, child] : n.fields) {
    if (ContainsSet(child)) return true;
  }
  for (TypeId child : n.children) {
    if (ContainsSet(child)) return true;
  }
  return false;
}

std::string TypePool::ToString(TypeId t) const {
  std::string out;
  AppendString(t, &out);
  return out;
}

void TypePool::AppendString(TypeId t, std::string* out) const {
  const TypeNode& n = node(t);
  switch (n.kind) {
    case TypeKind::kEmpty:
      out->append("empty");
      return;
    case TypeKind::kBase:
      out->append("D");
      return;
    case TypeKind::kClass:
      out->append(symbols_->name(n.class_name));
      return;
    case TypeKind::kTuple: {
      // Tuples over the positional attributes #1..#k print positionally
      // (the "#" spelling is internal; "#" starts a comment in sources).
      bool positional = true;
      for (size_t i = 0; i < n.fields.size(); ++i) {
        if (symbols_->name(n.fields[i].first) !=
            "#" + std::to_string(i + 1)) {
          positional = false;
          break;
        }
      }
      out->push_back('[');
      bool first = true;
      for (const auto& [attr, child] : n.fields) {
        if (!first) out->append(", ");
        first = false;
        if (!positional) {
          out->append(symbols_->name(attr));
          out->append(": ");
        }
        AppendString(child, out);
      }
      out->push_back(']');
      return;
    }
    case TypeKind::kSet:
      out->push_back('{');
      AppendString(n.children[0], out);
      out->push_back('}');
      return;
    case TypeKind::kUnion:
    case TypeKind::kIntersect: {
      const char* sep = n.kind == TypeKind::kUnion ? " | " : " & ";
      out->push_back('(');
      bool first = true;
      for (TypeId child : n.children) {
        if (!first) out->append(sep);
        first = false;
        AppendString(child, out);
      }
      out->push_back(')');
      return;
    }
  }
}

}  // namespace iqlkit
