#ifndef IQLKIT_MODEL_STATS_H_
#define IQLKIT_MODEL_STATS_H_

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "model/instance.h"

namespace iqlkit {

// Structural measurements of an instance, in the terms §5 reasons with.
struct InstanceStats {
  size_t ground_facts = 0;     // |ground-facts(I)|
  size_t objects = 0;          // |objects(I)|
  size_t constants = 0;        // |constants(I)|
  size_t distinct_values = 0;  // o-value DAG nodes reachable from facts
  // Lemma 5.7's branching factor: the maximum outdegree of a node in the
  // finite-tree representation of any o-value in o-values(I). Invention-
  // free ptime-restricted programs cannot push it past max(input
  // branching, rule size), which bounds their output polynomially.
  size_t branching_factor = 0;
  size_t max_value_depth = 0;  // deepest o-value tree
};

InstanceStats ComputeInstanceStats(const Instance& instance);

// The branching factor of a single o-value (max outdegree over its tree).
size_t ValueBranchingFactor(const ValueStore& values, ValueId v);

// The depth of a single o-value tree (leaves have depth 1).
size_t ValueDepth(const ValueStore& values, ValueId v);

// Cheap cardinality estimates over one instance, for the evaluator's
// literal scheduler: extent sizes are O(1) reads, and per-attribute
// distinct counts over a relation's top-level tuples (the classic
// selectivity denominator, |R| / ndv(R, A)) are computed by a single scan
// on first use and cached. Estimates may go stale as the instance grows;
// the scheduler only uses them to *order* joins, so staleness costs
// performance, never correctness.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Instance* instance)
      : instance_(instance) {}

  size_t RelationSize(Symbol r) const;
  size_t ClassSize(Symbol p) const;

  // Distinct values at top-level attribute `attr` across relation `r`'s
  // tuples (non-tuple elements and tuples lacking `attr` are skipped).
  size_t DistinctAtAttr(Symbol r, Symbol attr);

  // Expected number of tuples of `r` matching an equality probe that fixes
  // every attribute in `bound_attrs`, assuming independent uniform
  // attributes: |R| / prod(ndv(R, A)), clamped to >= 1 when |R| > 0.
  double EstimateMatches(Symbol r, const std::vector<Symbol>& bound_attrs);

 private:
  const Instance* instance_;
  std::map<std::pair<Symbol, Symbol>, size_t> distinct_cache_;
};

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_STATS_H_
