#ifndef IQLKIT_MODEL_STATS_H_
#define IQLKIT_MODEL_STATS_H_

#include <cstddef>

#include "model/instance.h"

namespace iqlkit {

// Structural measurements of an instance, in the terms §5 reasons with.
struct InstanceStats {
  size_t ground_facts = 0;     // |ground-facts(I)|
  size_t objects = 0;          // |objects(I)|
  size_t constants = 0;        // |constants(I)|
  size_t distinct_values = 0;  // o-value DAG nodes reachable from facts
  // Lemma 5.7's branching factor: the maximum outdegree of a node in the
  // finite-tree representation of any o-value in o-values(I). Invention-
  // free ptime-restricted programs cannot push it past max(input
  // branching, rule size), which bounds their output polynomially.
  size_t branching_factor = 0;
  size_t max_value_depth = 0;  // deepest o-value tree
};

InstanceStats ComputeInstanceStats(const Instance& instance);

// The branching factor of a single o-value (max outdegree over its tree).
size_t ValueBranchingFactor(const ValueStore& values, ValueId v);

// The depth of a single o-value tree (leaves have depth 1).
size_t ValueDepth(const ValueStore& values, ValueId v);

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_STATS_H_
