#include "model/value.h"

#include <algorithm>
#include <string>

#include "base/hash.h"
#include "base/logging.h"

namespace iqlkit {

namespace {

uint64_t HashNode(const ValueNode& n) {
  uint64_t h = Mix64(static_cast<uint64_t>(n.kind) + 1);
  switch (n.kind) {
    case ValueKind::kConst:
      h = HashCombine(h, n.atom);
      break;
    case ValueKind::kOid:
      h = HashCombine(h, n.oid.raw);
      break;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) {
        h = HashCombine(h, attr);
        h = HashCombine(h, child);
      }
      break;
    case ValueKind::kSet:
      h = HashRange(n.elems.begin(), n.elems.end(), h);
      break;
  }
  return h;
}

bool SameNode(const ValueNode& a, const ValueNode& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ValueKind::kConst:
      return a.atom == b.atom;
    case ValueKind::kOid:
      return a.oid == b.oid;
    case ValueKind::kTuple:
      return a.fields == b.fields;
    case ValueKind::kSet:
      return a.elems == b.elems;
  }
  return false;
}

}  // namespace

ValueId ValueStore::InternNode(ValueNode node) {
  uint64_t h = HashNode(node);
  auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (SameNode(nodes_[it->second], node)) return it->second;
  }
  IQL_CHECK(nodes_.size() < kInvalidValue) << "value store overflow";
  ValueId id = static_cast<ValueId>(nodes_.size());
  nodes_.push_back(std::move(node));
  index_.emplace(h, id);
  return id;
}

ValueId ValueStore::Const(std::string_view atom) {
  return ConstSymbol(symbols_->Intern(atom));
}

ValueId ValueStore::ConstSymbol(Symbol atom) {
  ValueNode n;
  n.kind = ValueKind::kConst;
  n.atom = atom;
  return InternNode(std::move(n));
}

ValueId ValueStore::ConstInt(int64_t value) {
  return Const(std::to_string(value));
}

ValueId ValueStore::OfOid(Oid o) {
  ValueNode n;
  n.kind = ValueKind::kOid;
  n.oid = o;
  return InternNode(std::move(n));
}

ValueId ValueStore::Tuple(std::vector<std::pair<Symbol, ValueId>> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    IQL_CHECK(fields[i - 1].first != fields[i].first)
        << "duplicate tuple attribute "
        << symbols_->name(fields[i].first);
  }
  ValueNode n;
  n.kind = ValueKind::kTuple;
  n.fields = std::move(fields);
  return InternNode(std::move(n));
}

ValueId ValueStore::EmptyTuple() { return Tuple({}); }

ValueId ValueStore::Set(std::vector<ValueId> elems) {
  std::sort(elems.begin(), elems.end());
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  ValueNode n;
  n.kind = ValueKind::kSet;
  n.elems = std::move(elems);
  return InternNode(std::move(n));
}

ValueId ValueStore::EmptySet() { return Set({}); }

ValueId ValueStore::SetInsert(ValueId base, ValueId elem) {
  const ValueNode& n = node(base);
  IQL_CHECK(n.kind == ValueKind::kSet) << "SetInsert on non-set";
  if (std::binary_search(n.elems.begin(), n.elems.end(), elem)) return base;
  std::vector<ValueId> elems = n.elems;
  elems.push_back(elem);
  return Set(std::move(elems));
}

ValueId ValueStore::SetUnion(ValueId a, ValueId b) {
  const ValueNode& na = node(a);
  const ValueNode& nb = node(b);
  IQL_CHECK(na.kind == ValueKind::kSet && nb.kind == ValueKind::kSet)
      << "SetUnion on non-set";
  std::vector<ValueId> elems;
  elems.reserve(na.elems.size() + nb.elems.size());
  std::set_union(na.elems.begin(), na.elems.end(), nb.elems.begin(),
                 nb.elems.end(), std::back_inserter(elems));
  return Set(std::move(elems));
}

bool ValueStore::SetContains(ValueId set, ValueId elem) const {
  const ValueNode& n = node(set);
  IQL_CHECK(n.kind == ValueKind::kSet) << "SetContains on non-set";
  return std::binary_search(n.elems.begin(), n.elems.end(), elem);
}

const ValueNode& ValueStore::node(ValueId id) const {
  IQL_CHECK(id < nodes_.size()) << "invalid ValueId " << id;
  return nodes_[id];
}

void ValueStore::CollectOids(ValueId v, std::set<Oid>* out) const {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return;
    case ValueKind::kOid:
      out->insert(n.oid);
      return;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) CollectOids(child, out);
      return;
    case ValueKind::kSet:
      for (ValueId child : n.elems) CollectOids(child, out);
      return;
  }
}

void ValueStore::CollectConsts(ValueId v, std::set<Symbol>* out) const {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      out->insert(n.atom);
      return;
    case ValueKind::kOid:
      return;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) CollectConsts(child, out);
      return;
    case ValueKind::kSet:
      for (ValueId child : n.elems) CollectConsts(child, out);
      return;
  }
}

std::string ValueStore::ToString(ValueId v) const {
  return ToString(v, [](Oid o) { return "@" + std::to_string(o.raw); });
}

}  // namespace iqlkit
