#include "model/value.h"

#include <algorithm>
#include <string>

#include "base/fault_injection.h"
#include "base/hash.h"
#include "base/logging.h"

namespace iqlkit {

uint64_t HashValueNode(const ValueNode& n) {
  uint64_t h = Mix64(static_cast<uint64_t>(n.kind) + 1);
  switch (n.kind) {
    case ValueKind::kConst:
      h = HashCombine(h, n.atom);
      break;
    case ValueKind::kOid:
      h = HashCombine(h, n.oid.raw);
      break;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) {
        h = HashCombine(h, attr);
        h = HashCombine(h, child);
      }
      break;
    case ValueKind::kSet:
      h = HashRange(n.elems.begin(), n.elems.end(), h);
      break;
  }
  return h;
}

bool SameValueNode(const ValueNode& a, const ValueNode& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ValueKind::kConst:
      return a.atom == b.atom;
    case ValueKind::kOid:
      return a.oid == b.oid;
    case ValueKind::kTuple:
      return a.fields == b.fields;
    case ValueKind::kSet:
      return a.elems == b.elems;
  }
  return false;
}

ValueId ValueStore::InternNode(ValueNode node) {
  uint64_t h = HashValueNode(node);
  auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (SameValueNode(nodes_[it->second], node)) return it->second;
  }
  IQL_CHECK(nodes_.size() < kInvalidValue) << "value store overflow";
  ValueId id = static_cast<ValueId>(nodes_.size());
  if (accountant_ != nullptr) {
    accountant_->Charge(ApproxValueNodeBytes(node));
    if (FaultInjector::Global().ShouldFail(FaultSite::kAllocation)) {
      // Interning cannot unwind mid-node; the governor surfaces the forced
      // failure as a MEMORY trip at its next poll.
      accountant_->MarkInjectedFailure();
    }
  }
  nodes_.push_back(std::move(node));
  index_.emplace(h, id);
  return id;
}

ValueId ValueStore::Const(std::string_view atom) {
  return ConstSymbol(symbols_->Intern(atom));
}

ValueId ValueStore::ConstSymbol(Symbol atom) {
  ValueNode n;
  n.kind = ValueKind::kConst;
  n.atom = atom;
  return InternNode(std::move(n));
}

ValueId ValueStore::ConstInt(int64_t value) {
  return Const(std::to_string(value));
}

ValueId ValueStore::OfOid(Oid o) {
  ValueNode n;
  n.kind = ValueKind::kOid;
  n.oid = o;
  return InternNode(std::move(n));
}

ValueId ValueStore::Tuple(std::vector<std::pair<Symbol, ValueId>> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    IQL_CHECK(fields[i - 1].first != fields[i].first)
        << "duplicate tuple attribute "
        << symbols_->name(fields[i].first);
  }
  ValueNode n;
  n.kind = ValueKind::kTuple;
  n.fields = std::move(fields);
  return InternNode(std::move(n));
}

ValueId ValueStore::EmptyTuple() { return Tuple({}); }

ValueId ValueStore::Set(std::vector<ValueId> elems) {
  // Canonical structural element order; structurally equal elements share an
  // id (hash consing), so duplicates are adjacent and compare equal by id.
  std::sort(elems.begin(), elems.end(),
            [this](ValueId a, ValueId b) { return Less(a, b); });
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  ValueNode n;
  n.kind = ValueKind::kSet;
  n.elems = std::move(elems);
  return InternNode(std::move(n));
}

ValueId ValueStore::EmptySet() { return Set({}); }

ValueId ValueStore::SetInsert(ValueId base, ValueId elem) {
  const ValueNode& n = node(base);
  IQL_CHECK(n.kind == ValueKind::kSet) << "SetInsert on non-set";
  if (std::binary_search(n.elems.begin(), n.elems.end(), elem,
                         [this](ValueId a, ValueId b) { return Less(a, b); }))
    return base;
  std::vector<ValueId> elems = n.elems;
  elems.push_back(elem);
  return Set(std::move(elems));
}

ValueId ValueStore::SetUnion(ValueId a, ValueId b) {
  const ValueNode& na = node(a);
  const ValueNode& nb = node(b);
  IQL_CHECK(na.kind == ValueKind::kSet && nb.kind == ValueKind::kSet)
      << "SetUnion on non-set";
  std::vector<ValueId> elems;
  elems.reserve(na.elems.size() + nb.elems.size());
  std::set_union(na.elems.begin(), na.elems.end(), nb.elems.begin(),
                 nb.elems.end(), std::back_inserter(elems),
                 [this](ValueId x, ValueId y) { return Less(x, y); });
  return Set(std::move(elems));
}

bool ValueStore::SetContains(ValueId set, ValueId elem) const {
  const ValueNode& n = node(set);
  IQL_CHECK(n.kind == ValueKind::kSet) << "SetContains on non-set";
  return std::binary_search(n.elems.begin(), n.elems.end(), elem,
                            [this](ValueId a, ValueId b) { return Less(a, b); });
}

ValueId ValueStore::FindNode(uint64_t h, const ValueNode& n) const {
  auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (SameValueNode(nodes_[it->second], n)) return it->second;
  }
  return kInvalidValue;
}

const ValueNode& ValueStore::node(ValueId id) const {
  IQL_CHECK(id < nodes_.size()) << "invalid ValueId " << id;
  return nodes_[id];
}

void ValueStore::CollectOids(ValueId v, std::set<Oid>* out) const {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return;
    case ValueKind::kOid:
      out->insert(n.oid);
      return;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) CollectOids(child, out);
      return;
    case ValueKind::kSet:
      for (ValueId child : n.elems) CollectOids(child, out);
      return;
  }
}

void ValueStore::CollectConsts(ValueId v, std::set<Symbol>* out) const {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      out->insert(n.atom);
      return;
    case ValueKind::kOid:
      return;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) CollectConsts(child, out);
      return;
    case ValueKind::kSet:
      for (ValueId child : n.elems) CollectConsts(child, out);
      return;
  }
}

std::string ValueStore::ToString(ValueId v) const {
  return ToString(v, [](Oid o) { return "@" + std::to_string(o.raw); });
}

// -- ValueArena -----------------------------------------------------------

ValueId ValueArena::InternSide(ValueNode n) {
  if (mutable_base_ != nullptr) return mutable_base_->InternNode(std::move(n));
  uint64_t h = HashValueNode(n);
  // Values already in the frozen base keep their base ids.
  ValueId in_base = base_->FindNode(h, n);
  if (in_base != kInvalidValue && in_base < base_limit_) return in_base;
  auto [begin, end] = side_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (SameValueNode(side_nodes_[it->second - base_limit_], n)) {
      return it->second;
    }
  }
  IQL_CHECK(base_limit_ + side_nodes_.size() < kInvalidValue)
      << "value arena overflow";
  ValueId id = static_cast<ValueId>(base_limit_ + side_nodes_.size());
  if (accountant_ != nullptr) {
    uint64_t bytes = ApproxValueNodeBytes(n);
    charged_bytes_ += bytes;
    accountant_->Charge(bytes);
    if (FaultInjector::Global().ShouldFail(FaultSite::kAllocation)) {
      accountant_->MarkInjectedFailure();
    }
  }
  side_nodes_.push_back(std::move(n));
  side_index_.emplace(h, id);
  return id;
}

ValueId ValueArena::ConstSymbol(Symbol atom) {
  ValueNode n;
  n.kind = ValueKind::kConst;
  n.atom = atom;
  return InternSide(std::move(n));
}

ValueId ValueArena::OfOid(Oid o) {
  ValueNode n;
  n.kind = ValueKind::kOid;
  n.oid = o;
  return InternSide(std::move(n));
}

ValueId ValueArena::Tuple(std::vector<std::pair<Symbol, ValueId>> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    IQL_CHECK(fields[i - 1].first != fields[i].first)
        << "duplicate tuple attribute";
  }
  ValueNode n;
  n.kind = ValueKind::kTuple;
  n.fields = std::move(fields);
  return InternSide(std::move(n));
}

ValueId ValueArena::Set(std::vector<ValueId> elems) {
  std::sort(elems.begin(), elems.end(),
            [this](ValueId a, ValueId b) { return Less(a, b); });
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  ValueNode n;
  n.kind = ValueKind::kSet;
  n.elems = std::move(elems);
  return InternSide(std::move(n));
}

ValueId ValueArena::SetInsert(ValueId base, ValueId elem) {
  const ValueNode& n = node(base);
  IQL_CHECK(n.kind == ValueKind::kSet) << "SetInsert on non-set";
  if (ElemsContain(n.elems, elem)) return base;
  std::vector<ValueId> elems = n.elems;
  elems.push_back(elem);
  return Set(std::move(elems));
}

bool ValueArena::SetContains(ValueId set, ValueId elem) const {
  const ValueNode& n = node(set);
  IQL_CHECK(n.kind == ValueKind::kSet) << "SetContains on non-set";
  return ElemsContain(n.elems, elem);
}

bool ValueArena::ElemsContain(const std::vector<ValueId>& elems,
                              ValueId elem) const {
  return std::binary_search(
      elems.begin(), elems.end(), elem,
      [this](ValueId a, ValueId b) { return Less(a, b); });
}

ValueId ValueArena::RehomeInto(ValueStore* dst, ValueId v) {
  IQL_CHECK(dst == base_) << "RehomeInto target must be the arena's base";
  if (mutable_base_ != nullptr || v < base_limit_) return v;
  auto memo = rehome_memo_.find(v);
  if (memo != rehome_memo_.end()) return memo->second;
  // Side node: rebuild bottom-up in the destination store. Copy the node
  // first -- recursive rehoming of children does not touch side_nodes_, but
  // the copy keeps the logic robust against iterator conventions.
  ValueNode n = side_nodes_[v - base_limit_];
  ValueId out = kInvalidValue;
  switch (n.kind) {
    case ValueKind::kConst:
      out = dst->ConstSymbol(n.atom);
      break;
    case ValueKind::kOid:
      out = dst->OfOid(n.oid);
      break;
    case ValueKind::kTuple:
      for (auto& [attr, child] : n.fields) {
        child = RehomeInto(dst, child);
      }
      out = dst->Tuple(std::move(n.fields));
      break;
    case ValueKind::kSet:
      for (ValueId& child : n.elems) child = RehomeInto(dst, child);
      out = dst->Set(std::move(n.elems));
      break;
  }
  rehome_memo_.emplace(v, out);
  return out;
}

}  // namespace iqlkit
