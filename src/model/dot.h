#ifndef IQLKIT_MODEL_DOT_H_
#define IQLKIT_MODEL_DOT_H_

#include <string>

#include "model/instance.h"

namespace iqlkit {

// Renders an instance as a Graphviz digraph: one node per oid (labelled
// with its class and debug name), arrows for oid references inside
// nu-values (labelled with the tuple-attribute path), and record nodes
// for relation tuples. Cyclic instances come out as cyclic graphs --
// the picture the paper draws informally for Example 1.2.
//
//   dot -Tsvg out.dot -o out.svg
std::string InstanceToDot(const Instance& instance,
                          std::string_view graph_name = "instance");

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_DOT_H_
