#ifndef IQLKIT_MODEL_UNIVERSE_H_
#define IQLKIT_MODEL_UNIVERSE_H_

#include <cstdint>

#include "base/interner.h"
#include "model/oid.h"
#include "model/type.h"
#include "model/value.h"

namespace iqlkit {

// Owns the shared, append-only catalogs every other structure references:
// the symbol table (names, attributes, constants), the o-value store, the
// type pool, and the fresh-oid counter. Schemas, instances, programs, and
// evaluators all borrow a Universe; keeping one per logical "database"
// makes ValueId/TypeId equality meaningful across them.
class Universe {
 public:
  // `first_oid` seeds the fresh-oid counter. Determinacy tests (Thm 4.1.3)
  // run the same program from two different seeds and assert the outputs
  // are O-isomorphic.
  explicit Universe(uint64_t first_oid = 1)
      : values_(&symbols_), types_(&symbols_), next_oid_(first_oid) {}
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  ValueStore& values() { return values_; }
  const ValueStore& values() const { return values_; }
  TypePool& types() { return types_; }
  const TypePool& types() const { return types_; }

  // Mints an oid never returned before from this universe.
  Oid MintOid() { return Oid{next_oid_++}; }
  uint64_t next_oid_raw() const { return next_oid_; }

  // Moves the fresh-oid counter forward to `raw` (never backward, so the
  // never-returned-before guarantee survives). Recovery uses this to restore
  // the counter recorded with a snapshot or WAL frame, which is what makes a
  // resumed evaluation mint the same oids the uninterrupted run would have.
  void AdvanceOidCounter(uint64_t raw) {
    if (raw > next_oid_) next_oid_ = raw;
  }

  Symbol Intern(std::string_view s) { return symbols_.Intern(s); }
  std::string_view Name(Symbol s) const { return symbols_.name(s); }

 private:
  SymbolTable symbols_;
  ValueStore values_;
  TypePool types_;
  uint64_t next_oid_;
};

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_UNIVERSE_H_
