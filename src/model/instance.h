#ifndef IQLKIT_MODEL_INSTANCE_H_
#define IQLKIT_MODEL_INSTANCE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "model/oid.h"
#include "model/schema.h"
#include "model/type_algebra.h"
#include "model/universe.h"
#include "model/value.h"

namespace iqlkit {

class Instance;

// One committed mutation of an instance, in the vocabulary of its public
// mutators. A journal of FactOps between two step boundaries is exactly what
// the durability layer needs to replay one fixpoint step: applying the ops
// in order through the same mutators reproduces the post-step instance.
struct FactOp {
  enum class Kind : uint8_t {
    kRelationAdd = 0,    // AddToRelation(name, value)
    kRelationRemove = 1, // RemoveFromRelation(name, value)
    kOidAdd = 2,         // AddOid(name /*class*/, oid)
    kOidValue = 3,       // SetOidValue(oid, value)
    kSetAdd = 4,         // AddToSetOid(oid, value /*element*/)
    kSetRemove = 5,      // RemoveFromSetOid(oid, value /*element*/)
    kOidValueClear = 6,  // ClearOidValue(oid)
    kOidDelete = 7,      // DeleteOidCascade(oid); the cascade is re-derived
    kOidName = 8,        // NameOid(oid, text)
  };
  Kind kind = Kind::kRelationAdd;
  Symbol name = kInvalidSymbol;   // relation (kRelation*) or class (kOidAdd)
  Oid oid;                        // oid-directed ops
  ValueId value = kInvalidValue;  // tuple / nu-value / set element
  std::string text;               // kOidName label
};

// One governor-committed fixpoint step, handed to a durability sink right
// after the evaluator commits it. `ops` is the step's journal in commit
// order; `instance` is the post-step instance (valid only for the duration
// of the call — sinks that checkpoint must serialize, not retain).
struct StepCommit {
  int stage = 0;
  uint64_t step = 0;          // step (round) index within the stage
  uint64_t next_oid_raw = 0;  // universe fresh-oid counter after the step
  const std::vector<FactOp>* ops = nullptr;
  const Instance* instance = nullptr;
};

// Durability hook: the evaluator calls OnStepCommit after every committed
// fixpoint step. A non-OK return aborts the evaluation with that status
// (the instance still sits on the completed-step boundary).
class StepCommitSink {
 public:
  virtual ~StepCommitSink() = default;
  virtual Status OnStepCommit(const StepCommit& commit) = 0;
};

// An instance I = (rho, pi, nu) of a schema (Definition 2.3.2):
//   rho : relation name -> finite set of o-values,
//   pi  : class name    -> finite set of oids (pairwise disjoint),
//   nu  : oid -> o-value, partial; total on set-valued classes, where an
//         oid with no recorded value denotes the empty set (Remark 2.3.3).
//
// Disjointness of pi is enforced structurally: each oid records the single
// class it belongs to, and AddOid rejects a second class.
//
// Instances are cheap-ish to copy (sets of 32/64-bit ids); the evaluator
// copies its working instance only at stage boundaries.
class Instance : public ClassResolver {
 public:
  // Non-owning: `schema` must outlive the instance.
  Instance(const Schema* schema, Universe* universe)
      : schema_(schema, [](const Schema*) {}), universe_(universe) {}
  // Shared ownership: used when an instance must carry its schema around
  // (e.g. projections onto freshly built output schemas).
  Instance(std::shared_ptr<const Schema> schema, Universe* universe)
      : schema_(std::move(schema)), universe_(universe) {}

  // A journal pointer tracks one specific working instance; it never travels
  // with copies (the evaluator's per-step rollback snapshots, projections)
  // or moves (partials handed out on a trip), which would otherwise record
  // phantom ops or dangle.
  Instance(const Instance& other)
      : schema_(other.schema_),
        universe_(other.universe_),
        relations_(other.relations_),
        classes_(other.classes_),
        nu_(other.nu_),
        class_of_(other.class_of_),
        oid_names_(other.oid_names_) {}
  Instance(Instance&& other) noexcept
      : schema_(std::move(other.schema_)),
        universe_(other.universe_),
        relations_(std::move(other.relations_)),
        classes_(std::move(other.classes_)),
        nu_(std::move(other.nu_)),
        class_of_(std::move(other.class_of_)),
        oid_names_(std::move(other.oid_names_)) {}
  Instance& operator=(const Instance& other) {
    if (this == &other) return *this;
    schema_ = other.schema_;
    universe_ = other.universe_;
    relations_ = other.relations_;
    classes_ = other.classes_;
    nu_ = other.nu_;
    class_of_ = other.class_of_;
    oid_names_ = other.oid_names_;
    journal_ = nullptr;  // wholesale replacement is not representable as ops
    return *this;
  }
  Instance& operator=(Instance&& other) noexcept {
    if (this == &other) return *this;
    schema_ = std::move(other.schema_);
    universe_ = other.universe_;
    relations_ = std::move(other.relations_);
    classes_ = std::move(other.classes_);
    nu_ = std::move(other.nu_);
    class_of_ = std::move(other.class_of_);
    oid_names_ = std::move(other.oid_names_);
    journal_ = nullptr;
    return *this;
  }

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }
  Universe* universe() const { return universe_; }

  // ---- construction ------------------------------------------------------

  Status AddToRelation(Symbol relation, ValueId v);
  Status AddToRelation(std::string_view relation, ValueId v);

  // Mints a fresh oid (from the universe counter) and places it in class P.
  // For a set-valued class the oid's value defaults to the empty set.
  Result<Oid> CreateOid(Symbol cls);
  Result<Oid> CreateOid(std::string_view cls);

  // Places an existing oid into class P; rejects oids already classed.
  Status AddOid(Symbol cls, Oid o);

  // Defines nu(o) = v. Rejects unknown oids and redefinition (the paper's
  // weak assignment never overwrites; see evaluator condition (*)).
  Status SetOidValue(Oid o, ValueId v);

  // For a set-valued oid: nu(o) := nu(o) union {elem}.
  Status AddToSetOid(Oid o, ValueId elem);

  // Attaches a debug label used by printers ("adam" instead of "@7").
  void NameOid(Oid o, std::string_view name);

  // ---- durability journal -------------------------------------------------

  // While set, every mutation that actually changes the instance appends a
  // FactOp (idempotent re-adds and no-op removals are not recorded). The
  // caller owns the vector and clears it at step boundaries; see StepCommit.
  void set_journal(std::vector<FactOp>* journal) { journal_ = journal; }
  std::vector<FactOp>* journal() const { return journal_; }

  // ---- deletion (IQL*, §4.5) ----------------------------------------------

  // Removes a tuple from a relation (no-op if absent). Returns true if a
  // fact was removed.
  bool RemoveFromRelation(Symbol relation, ValueId v);

  // Removes an element from a set-valued oid's value. Returns true if
  // removed.
  bool RemoveFromSetOid(Oid o, ValueId elem);

  // Makes nu(o) undefined again (no-op for set-valued oids, whose nu is
  // total; their value resets to the empty set instead).
  bool ClearOidValue(Oid o);

  // Deletes an oid: removes it from its class and erases every fact whose
  // value mentions it -- relation tuples are dropped, set elements removed,
  // and non-set oids whose value mentions it are deleted in cascade (the
  // paper's update-propagation remark, §4.5). Returns the number of oids
  // deleted (0 if unknown).
  size_t DeleteOidCascade(Oid o);

  // ---- access -------------------------------------------------------------

  // Extent of a relation / class; empty if the name has no tuples yet.
  // Relations iterate in the canonical structural order of their values
  // (see CompareValues in value.h), which is stable across evaluation
  // strategies and thread counts.
  const ValueIdSet& Relation(Symbol name) const;
  const std::set<Oid>& ClassExtent(Symbol name) const;
  bool RelationContains(Symbol name, ValueId v) const;

  // nu(o); nullopt when undefined. Unknown oids are an internal error.
  std::optional<ValueId> ValueOf(Oid o) const;
  // The unique class containing o; nullopt for oids not in this instance.
  std::optional<Symbol> ClassOf(Oid o) const;
  bool HasOid(Oid o) const { return class_of_.count(o) > 0; }

  // ClassResolver (disjoint assignment): exact class membership.
  bool OidInClass(Oid o, Symbol cls) const override;

  // All oids / constants occurring in the instance (objects(I),
  // constants(I), §2.3).
  std::set<Oid> Objects() const;
  std::set<Symbol> ConstantAtoms() const;

  // Printable label for an oid: its debug name, else "@<raw>".
  std::string OidLabel(Oid o) const;

  // ---- semantics ----------------------------------------------------------

  // Checks conditions (1)-(3) of Definition 2.3.2 plus oid-closure: every
  // oid occurring in a relation value or a nu-value belongs to some class.
  Status Validate() const;

  // Projection I[S'] onto a projection schema (§3). `sub` must use the same
  // universe and only names declared in this instance's schema.
  Instance Project(const Schema* sub) const;
  Instance Project(std::shared_ptr<const Schema> sub) const;

  // Copies every fact of `src` into this instance: relations, class
  // extents, nu-values, and debug names. `src`'s schema must be a subset of
  // this schema (a projection), over the same universe. Conflicting class
  // memberships or nu-values are errors.
  Status Absorb(const Instance& src);

  // Exact ground-fact equality (same universe required). This is equality
  // of ground-facts(I) (§2.3), *not* equality up to O-isomorphism; for the
  // latter see transform/isomorphism.h.
  bool EqualGroundFacts(const Instance& other) const;

  // Total number of ground facts (for budget accounting and reporting).
  size_t GroundFactCount() const;

  // Renders the instance in the paper's notation (pi, rho, nu sections).
  std::string ToString() const;

  // Renders ground-facts(I) in the paper's logic-programming notation
  // (§2.3): one line per fact --
  //   R(v).   P(o).   o^(v).   o^ = v.
  // (set-valued oids contribute one o^(v) line per element).
  std::string GroundFactsToString() const;

 private:
  // Returns the (possibly fresh) mutable extent of `relation`, constructed
  // with a comparator bound to this universe's value store.
  ValueIdSet& MutableRelation(Symbol relation);

  std::shared_ptr<const Schema> schema_;
  Universe* universe_;
  std::map<Symbol, ValueIdSet> relations_;
  std::map<Symbol, std::set<Oid>> classes_;
  std::unordered_map<Oid, ValueId, OidHash> nu_;
  std::unordered_map<Oid, Symbol, OidHash> class_of_;
  std::unordered_map<Oid, std::string, OidHash> oid_names_;
  std::vector<FactOp>* journal_ = nullptr;  // not owned; never copied/moved
};

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_INSTANCE_H_
