#include "model/dot.h"

#include <map>
#include <set>
#include <sstream>

namespace iqlkit {

namespace {

std::string Escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Emits edges from `from_node` to every oid mentioned in `v`, labelled by
// the access path, and returns a scalar rendering with oids elided.
void EmitValueEdges(const Instance& inst, const std::string& from_node,
                    ValueId v, const std::string& path,
                    std::ostringstream* out) {
  const ValueStore& values = inst.universe()->values();
  const ValueNode& n = values.node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return;
    case ValueKind::kOid:
      *out << "  " << from_node << " -> oid" << n.oid.raw << " [label=\""
           << Escape(path) << "\"];\n";
      return;
    case ValueKind::kTuple:
      for (const auto& [attr, child] : n.fields) {
        std::string name(inst.universe()->Name(attr));
        EmitValueEdges(inst, from_node, child,
                       path.empty() ? name : path + "." + name, out);
      }
      return;
    case ValueKind::kSet: {
      int i = 0;
      for (ValueId child : n.elems) {
        EmitValueEdges(inst, from_node, child, path + "{}",
                       out);
        (void)i;
      }
      return;
    }
  }
}

}  // namespace

std::string InstanceToDot(const Instance& instance,
                          std::string_view graph_name) {
  const ValueStore& values = instance.universe()->values();
  std::ostringstream out;
  out << "digraph \"" << Escape(graph_name) << "\" {\n"
      << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  // Oid nodes, grouped per class.
  for (Symbol p : instance.schema().class_names()) {
    for (Oid o : instance.ClassExtent(p)) {
      out << "  oid" << o.raw << " [label=\""
          << Escape(instance.OidLabel(o)) << " : "
          << Escape(instance.universe()->Name(p)) << "\"";
      if (!instance.ValueOf(o).has_value()) {
        out << ", style=dashed";  // undefined nu: incomplete information
      }
      out << "];\n";
    }
  }
  // nu edges.
  for (Symbol p : instance.schema().class_names()) {
    for (Oid o : instance.ClassExtent(p)) {
      auto v = instance.ValueOf(o);
      if (!v.has_value()) continue;
      EmitValueEdges(instance, "oid" + std::to_string(o.raw), *v, "",
                     &out);
    }
  }
  // Relation facts as ellipse nodes with edges to mentioned oids.
  int fact_id = 0;
  for (Symbol r : instance.schema().relation_names()) {
    for (ValueId v : instance.Relation(r)) {
      std::string node = "fact" + std::to_string(fact_id++);
      out << "  " << node << " [shape=ellipse, label=\""
          << Escape(instance.universe()->Name(r)) << " "
          << Escape(values.ToString(
                 v, [&](Oid o) { return instance.OidLabel(o); }))
          << "\"];\n";
      EmitValueEdges(instance, node, v, "", &out);
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace iqlkit
