#ifndef IQLKIT_MODEL_TYPE_ALGEBRA_H_
#define IQLKIT_MODEL_TYPE_ALGEBRA_H_

#include <unordered_map>

#include "base/interner.h"
#include "model/oid.h"
#include "model/type.h"
#include "model/value.h"

namespace iqlkit {

// Answers "does oid o belong to class P" for a concrete oid assignment pi.
// Instances implement this with their (disjoint) assignment; the
// inheritance layer (§6) implements it with the *inherited* assignment
// pi-bar of Definition 6.1.1, where an oid also belongs to every isa
// ancestor of its creation class.
class ClassResolver {
 public:
  virtual ~ClassResolver() = default;
  virtual bool OidInClass(Oid o, Symbol cls) const = 0;
};

// Decides membership v in ⟦t⟧pi (§2.2). With star=true it uses the
// *-interpretation of §6 instead, under which a tuple type describes all
// tuples having *at least* its attributes (Cardelli-style width subtyping).
//
// Memoizes (type, value) pairs, so validating a large instance touches each
// distinct subvalue/subtype pair once.
class TypeMembership {
 public:
  TypeMembership(const TypePool* types, const ValueStore* values,
                 const ClassResolver* classes, bool star = false)
      : types_(types), values_(values), classes_(classes), star_(star) {}
  // Arena-backed variant: value ids may refer to a worker's side store.
  TypeMembership(const TypePool* types, const ValueArena* arena,
                 const ClassResolver* classes, bool star = false)
      : types_(types), arena_(arena), classes_(classes), star_(star) {}

  bool Contains(TypeId t, ValueId v);

 private:
  const ValueNode& NodeOf(ValueId v) const {
    return arena_ != nullptr ? arena_->node(v) : values_->node(v);
  }

  const TypePool* types_;
  const ValueStore* values_ = nullptr;
  const ValueArena* arena_ = nullptr;
  const ClassResolver* classes_;
  bool star_;
  std::unordered_map<uint64_t, bool> cache_;
};

// Proposition 2.2.1 (1): returns a type equivalent to `t` over *every* oid
// assignment in which no intersection node is an ancestor of a tuple, set,
// or union node. Residual intersections are over distinct class names only.
TypeId IntersectionReduce(TypePool* pool, TypeId t);

// Proposition 2.2.1 (2): returns an intersection-free type equivalent to
// `t` over every *disjoint* oid assignment (residual class-class
// intersections become the empty type).
TypeId EliminateIntersection(TypePool* pool, TypeId t);

// Canonical form used for equivalence checking over disjoint assignments:
// eliminates intersections, then distributes unions upward out of tuple
// constructors ([A: t1|t2] == [A:t1] | [A:t2]); set constructors are a
// distribution boundary ({t1|t2} != {t1} | {t2}).
TypeId NormalizeDisjoint(TypePool* pool, TypeId t);

// True if the two types have identical canonical forms. Sound (equal forms
// imply equivalence over disjoint assignments); complete for the
// intersection/union-of-tuples patterns exercised by the paper, though not
// a full decision procedure for recursive type equivalence.
bool EquivalentOverDisjoint(TypePool* pool, TypeId a, TypeId b);

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_TYPE_ALGEBRA_H_
