#ifndef IQLKIT_MODEL_TYPE_H_
#define IQLKIT_MODEL_TYPE_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/interner.h"

namespace iqlkit {

// Handle to an interned type expression inside a TypePool.
using TypeId = uint32_t;
inline constexpr TypeId kInvalidType = 0xFFFFFFFFu;

// The type-expression constructors of §2.2:
//   t ::= {}(empty) | D | P | [A1:t,...,Ak:t] | {t} | (t | t) | (t & t)
enum class TypeKind : uint8_t {
  kEmpty,      // the empty type, interpretation {}
  kBase,       // D, the single base domain of constants
  kClass,      // a class name P; interpretation pi(P), a set of oids
  kTuple,      // [A1: t1, ..., Ak: tk]
  kSet,        // {t}
  kUnion,      // n-ary, canonicalized (flattened, sorted, deduplicated)
  kIntersect,  // n-ary, canonicalized
};

struct TypeNode {
  TypeKind kind = TypeKind::kEmpty;
  Symbol class_name = kInvalidSymbol;              // kClass
  std::vector<std::pair<Symbol, TypeId>> fields;   // kTuple (sorted by attr)
  std::vector<TypeId> children;                    // kSet(1)/kUnion/kIntersect
};

// Hash-consed store of type expressions. Construction canonicalizes on the
// fly with rewrites that are sound for *every* oid assignment pi:
//   - unions flatten, sort, deduplicate, and drop empty members;
//     a singleton union collapses; the empty union is the empty type;
//   - intersections flatten, sort, deduplicate; any empty member collapses
//     the whole intersection to empty; a singleton collapses;
//   - a tuple with an empty-typed field is the empty type
//     (the paper notes [A1: {}] and {} are equivalent, §2.2).
// Deeper, assignment-sensitive rewrites (Prop 2.2.1) live in
// model/type_algebra.h.
class TypePool {
 public:
  explicit TypePool(SymbolTable* symbols) : symbols_(symbols) {}
  TypePool(const TypePool&) = delete;
  TypePool& operator=(const TypePool&) = delete;

  TypeId Empty();
  TypeId Base();
  TypeId Class(Symbol name);
  TypeId ClassNamed(std::string_view name);
  TypeId Tuple(std::vector<std::pair<Symbol, TypeId>> fields);
  TypeId EmptyTuple() { return Tuple({}); }
  TypeId Set(TypeId elem);
  TypeId Union(std::vector<TypeId> members);
  TypeId Union2(TypeId a, TypeId b) { return Union({a, b}); }
  TypeId Intersect(std::vector<TypeId> members);
  TypeId Intersect2(TypeId a, TypeId b) { return Intersect({a, b}); }

  const TypeNode& node(TypeId id) const;
  size_t size() const { return nodes_.size(); }
  SymbolTable* symbols() const { return symbols_; }

  // Collects all class names referenced by `t` (transitively).
  void CollectClasses(TypeId t, std::set<Symbol>* out) const;

  // True if the parse tree of `t` contains no intersection node.
  bool IsIntersectionFree(TypeId t) const;
  // True if no intersection node is an ancestor of a tuple, set, or union
  // node ("intersection reduced", §2.2).
  bool IsIntersectionReduced(TypeId t) const;
  // True if the parse tree of `t` contains a set node (used by the §5
  // ptime-restriction analysis, which keys on set-free types).
  bool ContainsSet(TypeId t) const;

  // Renders `t` in the paper's notation: D, P, [A: t, ...], {t},
  // (t1 | t2), (t1 & t2), {} for empty.
  std::string ToString(TypeId t) const;

 private:
  TypeId InternNode(TypeNode node);
  void AppendString(TypeId t, std::string* out) const;

  SymbolTable* symbols_;
  std::vector<TypeNode> nodes_;
  std::unordered_multimap<uint64_t, TypeId> index_;
};

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_TYPE_H_
