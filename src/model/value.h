#ifndef IQLKIT_MODEL_VALUE_H_
#define IQLKIT_MODEL_VALUE_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/governor.h"
#include "base/interner.h"
#include "model/oid.h"

namespace iqlkit {

// Handle to an interned o-value inside a ValueStore.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValue = 0xFFFFFFFFu;

// The four o-value constructors of Definition 2.1.1: constants d in D,
// oids o in O, finite tuples [A1: v1, ..., Ak: vk], and finite sets
// {v1, ..., vk}.
enum class ValueKind : uint8_t { kConst, kOid, kTuple, kSet };

// One interned o-value node. Tuples keep fields sorted by attribute symbol;
// sets keep elements sorted in the *canonical structural order* (see
// CompareValues below) with duplicates removed, realizing the paper's
// duplicate-free tree representation of o-values (§2.1). Structural rather
// than ValueId order matters for parallel evaluation: it makes iteration
// order over set elements (and, via Instance, over relation extents)
// independent of the interning history of the store, so every worker --
// each with its own side store -- enumerates candidates identically.
struct ValueNode {
  ValueKind kind = ValueKind::kConst;
  Symbol atom = kInvalidSymbol;                     // kConst
  Oid oid;                                          // kOid
  std::vector<std::pair<Symbol, ValueId>> fields;   // kTuple
  std::vector<ValueId> elems;                       // kSet
};

// Content hash / equality of a node *within one store* (children compared by
// id, which hash-consing makes equivalent to structural comparison). Shared
// between ValueStore and the per-worker overlay in ValueArena.
uint64_t HashValueNode(const ValueNode& n);
bool SameValueNode(const ValueNode& a, const ValueNode& b);

// Approximate heap footprint of one interned node (node storage, vector
// payloads, hash-index entry). The evaluation governor's byte-level memory
// accounting charges this per newly interned node; it deliberately
// overestimates a little rather than chasing allocator internals.
inline uint64_t ApproxValueNodeBytes(const ValueNode& n) {
  return sizeof(ValueNode) + 32 +
         n.fields.capacity() * sizeof(std::pair<Symbol, ValueId>) +
         n.elems.capacity() * sizeof(ValueId);
}

// Canonical structural total order on o-values: by kind, then by constant
// atom / oid raw / lexicographic fields / lexicographic elements. The order
// depends only on the *structure* of the two values (plus the fixed symbol
// numbering), never on when they were interned, so any two stores that hold
// structurally equal values order them identically. `Store` needs
// `const ValueNode& node(ValueId) const`; equal ids short-circuit to 0.
template <typename Store>
int CompareValues(const Store& s, ValueId a, ValueId b) {
  if (a == b) return 0;
  const ValueNode& na = s.node(a);
  const ValueNode& nb = s.node(b);
  if (na.kind != nb.kind) {
    return static_cast<int>(na.kind) < static_cast<int>(nb.kind) ? -1 : 1;
  }
  switch (na.kind) {
    case ValueKind::kConst:
      return na.atom < nb.atom ? -1 : na.atom > nb.atom ? 1 : 0;
    case ValueKind::kOid:
      return na.oid.raw < nb.oid.raw ? -1 : na.oid.raw > nb.oid.raw ? 1 : 0;
    case ValueKind::kTuple: {
      size_t k = std::min(na.fields.size(), nb.fields.size());
      for (size_t i = 0; i < k; ++i) {
        if (na.fields[i].first != nb.fields[i].first) {
          return na.fields[i].first < nb.fields[i].first ? -1 : 1;
        }
        int c = CompareValues(s, na.fields[i].second, nb.fields[i].second);
        if (c != 0) return c;
      }
      return na.fields.size() < nb.fields.size()   ? -1
             : na.fields.size() > nb.fields.size() ? 1
                                                   : 0;
    }
    case ValueKind::kSet: {
      size_t k = std::min(na.elems.size(), nb.elems.size());
      for (size_t i = 0; i < k; ++i) {
        int c = CompareValues(s, na.elems[i], nb.elems[i]);
        if (c != 0) return c;
      }
      return na.elems.size() < nb.elems.size()   ? -1
             : na.elems.size() > nb.elems.size() ? 1
                                                 : 0;
    }
  }
  return 0;
}

// Hash-consed store of o-values. Every distinct o-value is materialized at
// most once, so *structural equality of o-values is equality of ValueIds*.
// This is what makes set semantics (duplicate elimination in relations and
// set values) and the evaluator's fixpoint test O(1) per fact.
//
// o-values are finite trees (Def 2.1.1); cyclic data is representable only
// through oids plus the instance's nu mapping, exactly as in the paper.
class ValueStore {
 public:
  explicit ValueStore(SymbolTable* symbols) : symbols_(symbols) {}
  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  // Leaf constructors.
  ValueId Const(std::string_view atom);
  ValueId ConstSymbol(Symbol atom);
  ValueId ConstInt(int64_t n);
  ValueId OfOid(Oid o);

  // Tuple constructor. Fields are sorted by attribute symbol; duplicate
  // attributes are an internal error (callers validate user input first).
  ValueId Tuple(std::vector<std::pair<Symbol, ValueId>> fields);
  ValueId EmptyTuple();

  // Set constructor. Sorts and deduplicates elements.
  ValueId Set(std::vector<ValueId> elems);
  ValueId EmptySet();

  // Returns the set `base` with `elem` inserted (interned fresh if needed).
  ValueId SetInsert(ValueId base, ValueId elem);
  // Returns the union of two set values.
  ValueId SetUnion(ValueId a, ValueId b);
  bool SetContains(ValueId set, ValueId elem) const;

  const ValueNode& node(ValueId id) const;
  size_t size() const { return nodes_.size(); }
  SymbolTable* symbols() const { return symbols_; }

  // Evaluation-scoped memory accounting: while set, every newly interned
  // node charges its approximate footprint (and consults the allocation
  // fault-injection site). The evaluator installs its governor's accountant
  // for the duration of a run and must clear it before the accountant dies.
  void set_accountant(MemoryAccountant* accountant) {
    accountant_ = accountant;
  }

  // Canonical structural order (see CompareValues above).
  int Compare(ValueId a, ValueId b) const {
    return CompareValues(*this, a, b);
  }
  bool Less(ValueId a, ValueId b) const { return Compare(a, b) < 0; }

  // Pure lookup: the id of a value structurally equal to `n` (whose hash is
  // `h`), or kInvalidValue if it has not been interned. Never inserts. Used
  // by ValueArena snapshots to dedup side-store values against the frozen
  // base without mutating it.
  ValueId FindNode(uint64_t h, const ValueNode& n) const;

  // Collects, transitively, all oids / constant atoms inside `v`.
  void CollectOids(ValueId v, std::set<Oid>* out) const;
  void CollectConsts(ValueId v, std::set<Symbol>* out) const;

  // Structurally rewrites every oid leaf through `rename`; used to apply
  // O-isomorphisms (paper §4.1).
  template <typename Fn>
  ValueId RewriteOids(ValueId v, const Fn& rename);

  // Rewrites oid leaves and constant atoms simultaneously (DO-isomorphisms).
  template <typename OidFn, typename ConstFn>
  ValueId Rewrite(ValueId v, const OidFn& rename_oid,
                  const ConstFn& rename_const);

  // Renders the o-value in the paper's notation, e.g.
  //   [name: "Adam", children: {@3, @4}]
  // Oids print as @<raw> unless `oid_name` provides a label.
  std::string ToString(ValueId v) const;
  template <typename OidNameFn>
  std::string ToString(ValueId v, const OidNameFn& oid_name) const;

 private:
  friend class ValueArena;  // passthrough mode interns via InternNode

  ValueId InternNode(ValueNode node);
  template <typename OidNameFn>
  void AppendString(ValueId v, const OidNameFn& oid_name,
                    std::string* out) const;

  SymbolTable* symbols_;
  MemoryAccountant* accountant_ = nullptr;
  std::vector<ValueNode> nodes_;
  // hash -> candidate ids; content compared on collision.
  std::unordered_multimap<uint64_t, ValueId> index_;
};

// Comparator adapting the canonical structural order to STL containers.
// The null-store default exists only so empty sets (e.g. the static "no such
// relation" extent) are constructible; it is never invoked on a comparison.
struct ValueLess {
  const ValueStore* store = nullptr;
  bool operator()(ValueId a, ValueId b) const { return store->Less(a, b); }
};

// A set of interned values iterated in canonical structural order.
using ValueIdSet = std::set<ValueId, ValueLess>;

// A view of a ValueStore used by the rule solver, in one of three modes:
//
//  * read-only:   wraps `const ValueStore*`; node() only, interning traps.
//  * passthrough: wraps `ValueStore*`; every operation delegates, so ids are
//                 exactly the shared store's ids (the serial path).
//  * snapshot:    freezes the base store at its current size and interns new
//                 values into a private side store (ids >= the frozen size).
//                 Lookups probe the frozen base first, so any value already
//                 interned keeps its base id; side values are deduped among
//                 themselves, giving the arena the same "structural equality
//                 is id equality" invariant as a plain store.
//
// Snapshot mode is what lets parallel workers evaluate rule bodies -- which
// may build tuples/sets and range over type extents -- against a shared
// immutable store without locks. After workers join, the coordinator calls
// RehomeInto() to re-intern each side value bottom-up into the (now again
// mutable) base store in canonical merge order, which is what makes the
// shared store's interning sequence independent of the thread count.
class ValueArena {
 public:
  static ValueArena ReadOnly(const ValueStore* base) {
    return ValueArena(base, nullptr, base->size());
  }
  static ValueArena Passthrough(ValueStore* base) {
    return ValueArena(base, base, 0);
  }
  static ValueArena Snapshot(const ValueStore* base) {
    return ValueArena(base, nullptr, base->size());
  }

  // Explicit move: the source must not release the charged bytes again.
  ValueArena(ValueArena&& other) noexcept
      : base_(other.base_),
        mutable_base_(other.mutable_base_),
        base_limit_(other.base_limit_),
        accountant_(other.accountant_),
        charged_bytes_(other.charged_bytes_),
        side_nodes_(std::move(other.side_nodes_)),
        side_index_(std::move(other.side_index_)),
        rehome_memo_(std::move(other.rehome_memo_)) {
    other.accountant_ = nullptr;
    other.charged_bytes_ = 0;
  }
  ValueArena(const ValueArena&) = delete;
  ValueArena& operator=(const ValueArena&) = delete;

  // Side-store charges are scoped to the arena's lifetime: releasing them
  // here keeps MemoryAccountant::bytes() tracking *live* memory while
  // peak_bytes() still records the mid-step high-water mark.
  ~ValueArena() {
    if (accountant_ != nullptr) accountant_->Release(charged_bytes_);
  }

  // Accounts side-store interning (snapshot mode). Passthrough arenas
  // delegate to the base store, whose own accountant covers them.
  void set_accountant(MemoryAccountant* accountant) {
    accountant_ = accountant;
  }

  const ValueNode& node(ValueId id) const {
    if (mutable_base_ != nullptr || id < base_limit_) {
      return base_->node(id);
    }
    return side_nodes_[id - base_limit_];
  }

  SymbolTable* symbols() const { return base_->symbols(); }
  const ValueStore* base() const { return base_; }

  int Compare(ValueId a, ValueId b) const {
    return CompareValues(*this, a, b);
  }
  bool Less(ValueId a, ValueId b) const { return Compare(a, b) < 0; }

  // Constructors mirroring ValueStore's interning surface.
  ValueId ConstSymbol(Symbol atom);
  ValueId OfOid(Oid o);
  ValueId Tuple(std::vector<std::pair<Symbol, ValueId>> fields);
  ValueId Set(std::vector<ValueId> elems);
  ValueId EmptySet() { return Set({}); }
  ValueId SetInsert(ValueId base, ValueId elem);
  bool SetContains(ValueId set, ValueId elem) const;
  // True when the (sorted) element list of a set node contains `elem`.
  bool ElemsContain(const std::vector<ValueId>& elems, ValueId elem) const;

  // True when `id` lives in the arena's private side store; side values are
  // by construction not structurally equal to any base value, so e.g. they
  // cannot occur in any relation of the frozen base instance.
  bool IsSide(ValueId id) const {
    return mutable_base_ == nullptr && id >= base_limit_;
  }

  // Re-interns `v` (and transitively its children) into `dst`, which must be
  // the arena's base store. Base ids pass through unchanged; side values are
  // rebuilt bottom-up and memoized. Only meaningful after workers have
  // stopped using the arena for interning.
  ValueId RehomeInto(ValueStore* dst, ValueId v);

  size_t side_size() const { return side_nodes_.size(); }

 private:
  ValueArena(const ValueStore* base, ValueStore* mutable_base,
             size_t base_limit)
      : base_(base), mutable_base_(mutable_base), base_limit_(base_limit) {}

  ValueId InternSide(ValueNode n);

  const ValueStore* base_;
  ValueStore* mutable_base_;  // non-null only in passthrough mode
  size_t base_limit_;         // frozen base size (snapshot / read-only)
  MemoryAccountant* accountant_ = nullptr;
  uint64_t charged_bytes_ = 0;  // released on destruction
  std::vector<ValueNode> side_nodes_;
  std::unordered_multimap<uint64_t, ValueId> side_index_;
  std::unordered_map<ValueId, ValueId> rehome_memo_;
};

// -- template implementations --------------------------------------------

template <typename Fn>
ValueId ValueStore::RewriteOids(ValueId v, const Fn& rename) {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return v;
    case ValueKind::kOid:
      return OfOid(rename(n.oid));
    case ValueKind::kTuple: {
      std::vector<std::pair<Symbol, ValueId>> fields = n.fields;
      for (auto& [attr, child] : fields) child = RewriteOids(child, rename);
      return Tuple(std::move(fields));
    }
    case ValueKind::kSet: {
      std::vector<ValueId> elems = n.elems;
      for (ValueId& child : elems) child = RewriteOids(child, rename);
      return Set(std::move(elems));
    }
  }
  return v;
}

template <typename OidFn, typename ConstFn>
ValueId ValueStore::Rewrite(ValueId v, const OidFn& rename_oid,
                            const ConstFn& rename_const) {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return ConstSymbol(rename_const(n.atom));
    case ValueKind::kOid:
      return OfOid(rename_oid(n.oid));
    case ValueKind::kTuple: {
      std::vector<std::pair<Symbol, ValueId>> fields = n.fields;
      for (auto& [attr, child] : fields) {
        child = Rewrite(child, rename_oid, rename_const);
      }
      return Tuple(std::move(fields));
    }
    case ValueKind::kSet: {
      std::vector<ValueId> elems = n.elems;
      for (ValueId& child : elems) {
        child = Rewrite(child, rename_oid, rename_const);
      }
      return Set(std::move(elems));
    }
  }
  return v;
}

template <typename OidNameFn>
std::string ValueStore::ToString(ValueId v, const OidNameFn& oid_name) const {
  std::string out;
  AppendString(v, oid_name, &out);
  return out;
}

template <typename OidNameFn>
void ValueStore::AppendString(ValueId v, const OidNameFn& oid_name,
                              std::string* out) const {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      out->push_back('"');
      out->append(symbols_->name(n.atom));
      out->push_back('"');
      return;
    case ValueKind::kOid:
      out->append(oid_name(n.oid));
      return;
    case ValueKind::kTuple: {
      out->push_back('[');
      bool first = true;
      for (const auto& [attr, child] : n.fields) {
        if (!first) out->append(", ");
        first = false;
        out->append(symbols_->name(attr));
        out->append(": ");
        AppendString(child, oid_name, out);
      }
      out->push_back(']');
      return;
    }
    case ValueKind::kSet: {
      out->push_back('{');
      bool first = true;
      for (ValueId child : n.elems) {
        if (!first) out->append(", ");
        first = false;
        AppendString(child, oid_name, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_VALUE_H_
