#ifndef IQLKIT_MODEL_VALUE_H_
#define IQLKIT_MODEL_VALUE_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/interner.h"
#include "model/oid.h"

namespace iqlkit {

// Handle to an interned o-value inside a ValueStore.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValue = 0xFFFFFFFFu;

// The four o-value constructors of Definition 2.1.1: constants d in D,
// oids o in O, finite tuples [A1: v1, ..., Ak: vk], and finite sets
// {v1, ..., vk}.
enum class ValueKind : uint8_t { kConst, kOid, kTuple, kSet };

// One interned o-value node. Tuples keep fields sorted by attribute symbol;
// sets keep elements sorted by ValueId with duplicates removed, realizing
// the paper's duplicate-free tree representation of o-values (§2.1).
struct ValueNode {
  ValueKind kind = ValueKind::kConst;
  Symbol atom = kInvalidSymbol;                     // kConst
  Oid oid;                                          // kOid
  std::vector<std::pair<Symbol, ValueId>> fields;   // kTuple
  std::vector<ValueId> elems;                       // kSet
};

// Hash-consed store of o-values. Every distinct o-value is materialized at
// most once, so *structural equality of o-values is equality of ValueIds*.
// This is what makes set semantics (duplicate elimination in relations and
// set values) and the evaluator's fixpoint test O(1) per fact.
//
// o-values are finite trees (Def 2.1.1); cyclic data is representable only
// through oids plus the instance's nu mapping, exactly as in the paper.
class ValueStore {
 public:
  explicit ValueStore(SymbolTable* symbols) : symbols_(symbols) {}
  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  // Leaf constructors.
  ValueId Const(std::string_view atom);
  ValueId ConstSymbol(Symbol atom);
  ValueId ConstInt(int64_t n);
  ValueId OfOid(Oid o);

  // Tuple constructor. Fields are sorted by attribute symbol; duplicate
  // attributes are an internal error (callers validate user input first).
  ValueId Tuple(std::vector<std::pair<Symbol, ValueId>> fields);
  ValueId EmptyTuple();

  // Set constructor. Sorts and deduplicates elements.
  ValueId Set(std::vector<ValueId> elems);
  ValueId EmptySet();

  // Returns the set `base` with `elem` inserted (interned fresh if needed).
  ValueId SetInsert(ValueId base, ValueId elem);
  // Returns the union of two set values.
  ValueId SetUnion(ValueId a, ValueId b);
  bool SetContains(ValueId set, ValueId elem) const;

  const ValueNode& node(ValueId id) const;
  size_t size() const { return nodes_.size(); }
  SymbolTable* symbols() const { return symbols_; }

  // Collects, transitively, all oids / constant atoms inside `v`.
  void CollectOids(ValueId v, std::set<Oid>* out) const;
  void CollectConsts(ValueId v, std::set<Symbol>* out) const;

  // Structurally rewrites every oid leaf through `rename`; used to apply
  // O-isomorphisms (paper §4.1).
  template <typename Fn>
  ValueId RewriteOids(ValueId v, const Fn& rename);

  // Rewrites oid leaves and constant atoms simultaneously (DO-isomorphisms).
  template <typename OidFn, typename ConstFn>
  ValueId Rewrite(ValueId v, const OidFn& rename_oid,
                  const ConstFn& rename_const);

  // Renders the o-value in the paper's notation, e.g.
  //   [name: "Adam", children: {@3, @4}]
  // Oids print as @<raw> unless `oid_name` provides a label.
  std::string ToString(ValueId v) const;
  template <typename OidNameFn>
  std::string ToString(ValueId v, const OidNameFn& oid_name) const;

 private:
  ValueId InternNode(ValueNode node);
  template <typename OidNameFn>
  void AppendString(ValueId v, const OidNameFn& oid_name,
                    std::string* out) const;

  SymbolTable* symbols_;
  std::vector<ValueNode> nodes_;
  // hash -> candidate ids; content compared on collision.
  std::unordered_multimap<uint64_t, ValueId> index_;
};

// -- template implementations --------------------------------------------

template <typename Fn>
ValueId ValueStore::RewriteOids(ValueId v, const Fn& rename) {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return v;
    case ValueKind::kOid:
      return OfOid(rename(n.oid));
    case ValueKind::kTuple: {
      std::vector<std::pair<Symbol, ValueId>> fields = n.fields;
      for (auto& [attr, child] : fields) child = RewriteOids(child, rename);
      return Tuple(std::move(fields));
    }
    case ValueKind::kSet: {
      std::vector<ValueId> elems = n.elems;
      for (ValueId& child : elems) child = RewriteOids(child, rename);
      return Set(std::move(elems));
    }
  }
  return v;
}

template <typename OidFn, typename ConstFn>
ValueId ValueStore::Rewrite(ValueId v, const OidFn& rename_oid,
                            const ConstFn& rename_const) {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      return ConstSymbol(rename_const(n.atom));
    case ValueKind::kOid:
      return OfOid(rename_oid(n.oid));
    case ValueKind::kTuple: {
      std::vector<std::pair<Symbol, ValueId>> fields = n.fields;
      for (auto& [attr, child] : fields) {
        child = Rewrite(child, rename_oid, rename_const);
      }
      return Tuple(std::move(fields));
    }
    case ValueKind::kSet: {
      std::vector<ValueId> elems = n.elems;
      for (ValueId& child : elems) {
        child = Rewrite(child, rename_oid, rename_const);
      }
      return Set(std::move(elems));
    }
  }
  return v;
}

template <typename OidNameFn>
std::string ValueStore::ToString(ValueId v, const OidNameFn& oid_name) const {
  std::string out;
  AppendString(v, oid_name, &out);
  return out;
}

template <typename OidNameFn>
void ValueStore::AppendString(ValueId v, const OidNameFn& oid_name,
                              std::string* out) const {
  const ValueNode& n = node(v);
  switch (n.kind) {
    case ValueKind::kConst:
      out->push_back('"');
      out->append(symbols_->name(n.atom));
      out->push_back('"');
      return;
    case ValueKind::kOid:
      out->append(oid_name(n.oid));
      return;
    case ValueKind::kTuple: {
      out->push_back('[');
      bool first = true;
      for (const auto& [attr, child] : n.fields) {
        if (!first) out->append(", ");
        first = false;
        out->append(symbols_->name(attr));
        out->append(": ");
        AppendString(child, oid_name, out);
      }
      out->push_back(']');
      return;
    }
    case ValueKind::kSet: {
      out->push_back('{');
      bool first = true;
      for (ValueId child : n.elems) {
        if (!first) out->append(", ");
        first = false;
        AppendString(child, oid_name, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_VALUE_H_
