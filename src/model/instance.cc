#include "model/instance.h"

#include <string>

#include "base/logging.h"

namespace iqlkit {

namespace {
// Only ever handed out empty, so the null-store comparator is never called.
const ValueIdSet kEmptyValueSet{ValueLess{nullptr}};
const std::set<Oid> kEmptyOidSet;
}  // namespace

ValueIdSet& Instance::MutableRelation(Symbol relation) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    it = relations_
             .emplace(relation, ValueIdSet(ValueLess{&universe_->values()}))
             .first;
  }
  return it->second;
}

Status Instance::AddToRelation(Symbol relation, ValueId v) {
  if (!schema_->HasRelation(relation)) {
    return NotFoundError("unknown relation '" +
                         std::string(universe_->Name(relation)) + "'");
  }
  auto [it, inserted] = MutableRelation(relation).insert(v);
  if (inserted && journal_ != nullptr) {
    journal_->push_back({FactOp::Kind::kRelationAdd, relation, Oid{}, v, {}});
  }
  return Status::Ok();
}

Status Instance::AddToRelation(std::string_view relation, ValueId v) {
  return AddToRelation(universe_->Intern(relation), v);
}

Result<Oid> Instance::CreateOid(Symbol cls) {
  if (!schema_->HasClass(cls)) {
    return NotFoundError("unknown class '" +
                         std::string(universe_->Name(cls)) + "'");
  }
  Oid o = universe_->MintOid();
  IQL_RETURN_IF_ERROR(AddOid(cls, o));
  return o;
}

Result<Oid> Instance::CreateOid(std::string_view cls) {
  return CreateOid(universe_->Intern(cls));
}

Status Instance::AddOid(Symbol cls, Oid o) {
  if (!schema_->HasClass(cls)) {
    return NotFoundError("unknown class '" +
                         std::string(universe_->Name(cls)) + "'");
  }
  auto it = class_of_.find(o);
  if (it != class_of_.end()) {
    if (it->second == cls) return Status::Ok();
    return FailedPreconditionError(
        "oid @" + std::to_string(o.raw) + " already belongs to class '" +
        std::string(universe_->Name(it->second)) +
        "' (class assignments must be disjoint, Def 2.1.2)");
  }
  class_of_.emplace(o, cls);
  classes_[cls].insert(o);
  if (journal_ != nullptr) {
    journal_->push_back({FactOp::Kind::kOidAdd, cls, o, kInvalidValue, {}});
  }
  if (schema_->IsSetValuedClass(cls)) {
    // Condition (3) of Def 2.3.2: nu is total on set-valued classes; a
    // fresh oid's value defaults to the empty set (Remark 2.3.3).
    nu_.emplace(o, universe_->values().EmptySet());
  }
  return Status::Ok();
}

Status Instance::SetOidValue(Oid o, ValueId v) {
  auto cls = class_of_.find(o);
  if (cls == class_of_.end()) {
    return NotFoundError("oid @" + std::to_string(o.raw) +
                         " not in any class of this instance");
  }
  auto it = nu_.find(o);
  if (it != nu_.end()) {
    if (it->second == v) return Status::Ok();
    return FailedPreconditionError(
        "nu(@" + std::to_string(o.raw) +
        ") already defined; values are write-once");
  }
  nu_.emplace(o, v);
  if (journal_ != nullptr) {
    journal_->push_back({FactOp::Kind::kOidValue, kInvalidSymbol, o, v, {}});
  }
  return Status::Ok();
}

Status Instance::AddToSetOid(Oid o, ValueId elem) {
  auto cls = class_of_.find(o);
  if (cls == class_of_.end()) {
    return NotFoundError("oid @" + std::to_string(o.raw) +
                         " not in any class of this instance");
  }
  if (!schema_->IsSetValuedClass(cls->second)) {
    return FailedPreconditionError(
        "oid @" + std::to_string(o.raw) + " of class '" +
        std::string(universe_->Name(cls->second)) + "' is not set-valued");
  }
  auto it = nu_.find(o);
  ValueId base =
      it == nu_.end() ? universe_->values().EmptySet() : it->second;
  ValueId updated = universe_->values().SetInsert(base, elem);
  if (updated != base && journal_ != nullptr) {
    journal_->push_back({FactOp::Kind::kSetAdd, kInvalidSymbol, o, elem, {}});
  }
  nu_[o] = updated;
  return Status::Ok();
}

void Instance::NameOid(Oid o, std::string_view name) {
  oid_names_[o] = std::string(name);
  if (journal_ != nullptr) {
    journal_->push_back({FactOp::Kind::kOidName, kInvalidSymbol, o,
                         kInvalidValue, std::string(name)});
  }
}

bool Instance::RemoveFromRelation(Symbol relation, ValueId v) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  bool removed = it->second.erase(v) > 0;
  if (removed && journal_ != nullptr) {
    journal_->push_back(
        {FactOp::Kind::kRelationRemove, relation, Oid{}, v, {}});
  }
  return removed;
}

bool Instance::RemoveFromSetOid(Oid o, ValueId elem) {
  auto cls = class_of_.find(o);
  if (cls == class_of_.end() || !schema_->IsSetValuedClass(cls->second)) {
    return false;
  }
  auto it = nu_.find(o);
  if (it == nu_.end()) return false;
  const ValueStore& values = universe_->values();
  if (!values.SetContains(it->second, elem)) return false;
  std::vector<ValueId> remaining;
  for (ValueId e : values.node(it->second).elems) {
    if (e != elem) remaining.push_back(e);
  }
  it->second = universe_->values().Set(std::move(remaining));
  if (journal_ != nullptr) {
    journal_->push_back(
        {FactOp::Kind::kSetRemove, kInvalidSymbol, o, elem, {}});
  }
  return true;
}

bool Instance::ClearOidValue(Oid o) {
  auto cls = class_of_.find(o);
  if (cls == class_of_.end()) return false;
  bool cleared;
  if (schema_->IsSetValuedClass(cls->second)) {
    auto it = nu_.find(o);
    ValueId empty = universe_->values().EmptySet();
    if (it == nu_.end() || it->second == empty) return false;
    it->second = empty;
    cleared = true;
  } else {
    cleared = nu_.erase(o) > 0;
  }
  if (cleared && journal_ != nullptr) {
    journal_->push_back(
        {FactOp::Kind::kOidValueClear, kInvalidSymbol, o, kInvalidValue, {}});
  }
  return cleared;
}

size_t Instance::DeleteOidCascade(Oid seed) {
  if (!HasOid(seed)) return 0;
  // The cascade is a deterministic function of (instance, seed), so one op
  // suffices: replay re-runs the same cascade through this same method.
  if (journal_ != nullptr) {
    journal_->push_back(
        {FactOp::Kind::kOidDelete, kInvalidSymbol, seed, kInvalidValue, {}});
  }
  ValueStore& values = universe_->values();
  std::set<Oid> deleted;
  std::vector<Oid> worklist = {seed};
  auto mentions = [&](ValueId v) {
    std::set<Oid> oids;
    values.CollectOids(v, &oids);
    for (Oid d : deleted) {
      if (oids.count(d)) return true;
    }
    return false;
  };
  while (!worklist.empty()) {
    Oid o = worklist.back();
    worklist.pop_back();
    if (deleted.count(o) || !HasOid(o)) continue;
    deleted.insert(o);
    Symbol cls = class_of_.at(o);
    classes_[cls].erase(o);
    class_of_.erase(o);
    nu_.erase(o);
    oid_names_.erase(o);
    // Erase relation tuples mentioning any deleted oid.
    for (auto& [rel, tuples] : relations_) {
      for (auto it = tuples.begin(); it != tuples.end();) {
        it = mentions(*it) ? tuples.erase(it) : std::next(it);
      }
    }
    // Strip deleted oids out of set values; cascade through non-set values.
    for (auto& [other, v] : nu_) {
      auto ocls = class_of_.find(other);
      if (ocls == class_of_.end()) continue;
      if (schema_->IsSetValuedClass(ocls->second)) {
        std::vector<ValueId> remaining;
        bool changed = false;
        for (ValueId e : values.node(v).elems) {
          if (mentions(e)) {
            changed = true;
          } else {
            remaining.push_back(e);
          }
        }
        if (changed) v = universe_->values().Set(std::move(remaining));
      } else if (mentions(v)) {
        worklist.push_back(other);
      }
    }
  }
  return deleted.size();
}

const ValueIdSet& Instance::Relation(Symbol name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? kEmptyValueSet : it->second;
}

const std::set<Oid>& Instance::ClassExtent(Symbol name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? kEmptyOidSet : it->second;
}

bool Instance::RelationContains(Symbol name, ValueId v) const {
  auto it = relations_.find(name);
  return it != relations_.end() && it->second.count(v) > 0;
}

std::optional<ValueId> Instance::ValueOf(Oid o) const {
  auto it = nu_.find(o);
  if (it == nu_.end()) return std::nullopt;
  return it->second;
}

std::optional<Symbol> Instance::ClassOf(Oid o) const {
  auto it = class_of_.find(o);
  if (it == class_of_.end()) return std::nullopt;
  return it->second;
}

bool Instance::OidInClass(Oid o, Symbol cls) const {
  auto it = class_of_.find(o);
  return it != class_of_.end() && it->second == cls;
}

std::set<Oid> Instance::Objects() const {
  std::set<Oid> out;
  const ValueStore& values = universe_->values();
  for (const auto& [cls, oids] : classes_) {
    out.insert(oids.begin(), oids.end());
  }
  for (const auto& [rel, tuples] : relations_) {
    for (ValueId v : tuples) values.CollectOids(v, &out);
  }
  for (const auto& [o, v] : nu_) {
    out.insert(o);
    values.CollectOids(v, &out);
  }
  return out;
}

std::set<Symbol> Instance::ConstantAtoms() const {
  std::set<Symbol> out;
  const ValueStore& values = universe_->values();
  for (const auto& [rel, tuples] : relations_) {
    for (ValueId v : tuples) values.CollectConsts(v, &out);
  }
  for (const auto& [o, v] : nu_) values.CollectConsts(v, &out);
  return out;
}

std::string Instance::OidLabel(Oid o) const {
  auto it = oid_names_.find(o);
  if (it != oid_names_.end()) return it->second;
  return "@" + std::to_string(o.raw);
}

Status Instance::Validate() const {
  TypeMembership membership(&universe_->types(), &universe_->values(), this);
  const ValueStore& values = universe_->values();

  // Condition (1): rho(R) subset of T(R)'s interpretation.
  for (const auto& [rel, tuples] : relations_) {
    TypeId t = schema_->RelationType(rel);
    for (ValueId v : tuples) {
      if (!membership.Contains(t, v)) {
        return TypeError("value " + values.ToString(v) + " in relation '" +
                         std::string(universe_->Name(rel)) +
                         "' is not of type " +
                         universe_->types().ToString(t));
      }
    }
  }
  // Conditions (2) and (3): nu-values typed; nu total on set-valued classes.
  for (const auto& [cls, oids] : classes_) {
    TypeId t = schema_->ClassType(cls);
    bool set_valued = schema_->IsSetValuedClass(cls);
    for (Oid o : oids) {
      auto v = ValueOf(o);
      if (!v.has_value()) {
        if (set_valued) {
          return TypeError("nu undefined for set-valued oid " + OidLabel(o));
        }
        continue;  // non-set oids may be undefined (incomplete information)
      }
      if (!membership.Contains(t, *v)) {
        return TypeError("nu(" + OidLabel(o) + ") = " + values.ToString(*v) +
                         " is not of type " + universe_->types().ToString(t));
      }
    }
  }
  // Oid closure: every oid occurring anywhere belongs to some class.
  for (Oid o : Objects()) {
    if (!HasOid(o)) {
      return TypeError("oid @" + std::to_string(o.raw) +
                       " occurs in the instance but belongs to no class");
    }
  }
  return Status::Ok();
}

Instance Instance::Project(const Schema* sub) const {
  return Project(std::shared_ptr<const Schema>(sub, [](const Schema*) {}));
}

Instance Instance::Project(std::shared_ptr<const Schema> sub_ptr) const {
  const Schema* sub = sub_ptr.get();
  Instance out(std::move(sub_ptr), universe_);
  for (Symbol r : sub->relation_names()) {
    auto it = relations_.find(r);
    if (it != relations_.end()) out.relations_.emplace(r, it->second);
  }
  for (Symbol p : sub->class_names()) {
    auto it = classes_.find(p);
    if (it == classes_.end()) continue;
    out.classes_[p] = it->second;
    for (Oid o : it->second) {
      out.class_of_.emplace(o, p);
      auto v = nu_.find(o);
      if (v != nu_.end()) out.nu_.emplace(o, v->second);
      auto name = oid_names_.find(o);
      if (name != oid_names_.end()) out.oid_names_.emplace(o, name->second);
    }
  }
  return out;
}

Status Instance::Absorb(const Instance& src) {
  IQL_CHECK(universe_ == src.universe_)
      << "Absorb requires a shared universe";
  for (Symbol r : src.schema_->relation_names()) {
    if (!schema_->HasRelation(r)) {
      return NotFoundError("relation '" + std::string(universe_->Name(r)) +
                           "' not in target schema");
    }
    const auto& tuples = src.Relation(r);
    MutableRelation(r).insert(tuples.begin(), tuples.end());
  }
  for (Symbol p : src.schema_->class_names()) {
    if (!schema_->HasClass(p)) {
      return NotFoundError("class '" + std::string(universe_->Name(p)) +
                           "' not in target schema");
    }
    for (Oid o : src.ClassExtent(p)) {
      auto [it, inserted] = class_of_.emplace(o, p);
      if (!inserted && it->second != p) {
        return FailedPreconditionError(
            "oid @" + std::to_string(o.raw) +
            " already belongs to a different class");
      }
      classes_[p].insert(o);
      auto v = src.nu_.find(o);
      if (v != src.nu_.end()) {
        auto [nit, ninserted] = nu_.emplace(o, v->second);
        if (!ninserted && nit->second != v->second) {
          return FailedPreconditionError(
              "conflicting nu-value for oid @" + std::to_string(o.raw));
        }
      } else if (schema_->IsSetValuedClass(p)) {
        nu_.emplace(o, universe_->values().EmptySet());
      }
      auto name = src.oid_names_.find(o);
      if (name != src.oid_names_.end()) {
        oid_names_.emplace(o, name->second);
      }
    }
  }
  return Status::Ok();
}

bool Instance::EqualGroundFacts(const Instance& other) const {
  IQL_CHECK(universe_ == other.universe_)
      << "ground-fact equality requires a shared universe";
  return relations_ == other.relations_ && classes_ == other.classes_ &&
         nu_ == other.nu_;
}

size_t Instance::GroundFactCount() const {
  size_t n = 0;
  for (const auto& [rel, tuples] : relations_) n += tuples.size();
  for (const auto& [cls, oids] : classes_) n += oids.size();
  const ValueStore& values = universe_->values();
  for (const auto& [o, v] : nu_) {
    // A set-valued oid contributes one fact per element (o-hat(v) facts);
    // a non-set oid contributes a single o-hat = v fact.
    auto cls = class_of_.find(o);
    if (cls != class_of_.end() && schema_->IsSetValuedClass(cls->second)) {
      n += values.node(v).elems.size();
    } else {
      n += 1;
    }
  }
  return n;
}

std::string Instance::GroundFactsToString() const {
  const ValueStore& values = universe_->values();
  auto label = [this](Oid o) { return OidLabel(o); };
  std::string out;
  for (Symbol r : schema_->relation_names()) {
    for (ValueId v : Relation(r)) {
      out += std::string(universe_->Name(r)) + "(" +
             values.ToString(v, label) + ").\n";
    }
  }
  for (Symbol p : schema_->class_names()) {
    bool set_valued = schema_->IsSetValuedClass(p);
    for (Oid o : ClassExtent(p)) {
      out += std::string(universe_->Name(p)) + "(" + OidLabel(o) + ").\n";
      auto v = ValueOf(o);
      if (!v.has_value()) continue;
      if (set_valued) {
        for (ValueId e : values.node(*v).elems) {
          out += OidLabel(o) + "^(" + values.ToString(e, label) + ").\n";
        }
      } else {
        out += OidLabel(o) + "^ = " + values.ToString(*v, label) + ".\n";
      }
    }
  }
  return out;
}

std::string Instance::ToString() const {
  const ValueStore& values = universe_->values();
  auto label = [this](Oid o) { return OidLabel(o); };
  std::string out;
  for (Symbol p : schema_->class_names()) {
    out += "pi(" + std::string(universe_->Name(p)) + ") = {";
    bool first = true;
    for (Oid o : ClassExtent(p)) {
      if (!first) out += ", ";
      first = false;
      out += OidLabel(o);
    }
    out += "}\n";
  }
  for (Symbol r : schema_->relation_names()) {
    out += "rho(" + std::string(universe_->Name(r)) + ") = {";
    bool first = true;
    for (ValueId v : Relation(r)) {
      if (!first) out += ", ";
      first = false;
      out += values.ToString(v, label);
    }
    out += "}\n";
  }
  for (Symbol p : schema_->class_names()) {
    for (Oid o : ClassExtent(p)) {
      auto v = ValueOf(o);
      out += "nu(" + OidLabel(o) + ") = ";
      out += v.has_value() ? values.ToString(*v, label) : "undefined";
      out += "\n";
    }
  }
  return out;
}

}  // namespace iqlkit
