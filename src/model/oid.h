#ifndef IQLKIT_MODEL_OID_H_
#define IQLKIT_MODEL_OID_H_

#include <compare>
#include <cstdint>
#include <functional>

#include "base/hash.h"

namespace iqlkit {

// An object identity (oid): an atomic, uninterpreted element of the
// countable set O (paper §2.1). The only observable structure on oids is
// equality; the raw integer exists so the implementation can mint fresh
// ones and order them deterministically. Query results are defined only up
// to renaming of oids (O-isomorphism, paper §4.1), and the test suite
// verifies that programs do not depend on the raw values.
struct Oid {
  uint64_t raw = 0;

  friend auto operator<=>(const Oid&, const Oid&) = default;
};

struct OidHash {
  size_t operator()(Oid o) const { return static_cast<size_t>(Mix64(o.raw)); }
};

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_OID_H_
