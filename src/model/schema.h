#ifndef IQLKIT_MODEL_SCHEMA_H_
#define IQLKIT_MODEL_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "model/type.h"
#include "model/universe.h"

namespace iqlkit {

// A database schema S = (R, P, T) (Definition 2.3.1): finite sets of
// relation names and class names plus a type expression for each.
// Relations denote duplicate-free sets of o-values of type T(R); classes
// denote disjoint finite sets of oids whose nu-values have type T(P).
//
// Relation and class names share one namespace (both occur as predicate
// symbols in IQL rules), so declaring "R" as both is an error.
class Schema {
 public:
  explicit Schema(Universe* universe) : universe_(universe) {}

  Status DeclareRelation(std::string_view name, TypeId type);
  Status DeclareClass(std::string_view name, TypeId type);

  bool HasRelation(Symbol name) const {
    return relation_types_.count(name) > 0;
  }
  bool HasClass(Symbol name) const { return class_types_.count(name) > 0; }
  bool HasName(Symbol name) const {
    return HasRelation(name) || HasClass(name);
  }

  // Type of a declared relation/class; kInvalidType if undeclared.
  TypeId RelationType(Symbol name) const;
  TypeId ClassType(Symbol name) const;

  // True if T(P) = {t} for some t ("set-valued class", §2.3): nu must be
  // total on p(P) and undefined values default to the empty set.
  bool IsSetValuedClass(Symbol name) const;

  // Declaration order, for deterministic printing and iteration.
  const std::vector<Symbol>& relation_names() const {
    return relation_order_;
  }
  const std::vector<Symbol>& class_names() const { return class_order_; }

  Universe* universe() const { return universe_; }

  // Checks that every class name referenced inside a declared type is
  // itself declared (types refer to base domains or class names, never to
  // relation names, §2.2).
  Status Validate() const;

  // Projection of a schema onto a subset of its names (§3). Fails if a kept
  // class type references a dropped class.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  // Renders the schema in the paper's declaration syntax.
  std::string ToString() const;

 private:
  Universe* universe_;
  std::unordered_map<Symbol, TypeId> relation_types_;
  std::unordered_map<Symbol, TypeId> class_types_;
  std::vector<Symbol> relation_order_;
  std::vector<Symbol> class_order_;
};

}  // namespace iqlkit

#endif  // IQLKIT_MODEL_SCHEMA_H_
