#include "datalog/datalog.h"

#include <algorithm>
#include <optional>

#include "analysis/diagnostic.h"
#include "base/fault_injection.h"
#include "base/hash.h"
#include "base/logging.h"
#include "base/thread_pool.h"

// Computed-goto action dispatch is a GCC/Clang extension; the same gate
// the IQL VM uses (iql/vm.cc) selects it, and IQLKIT_FORCE_SWITCH_DISPATCH
// forces the portable switch interpreter for differential builds.
#if defined(__GNUC__) && !defined(IQLKIT_FORCE_SWITCH_DISPATCH)
#define IQLKIT_DATALOG_THREADED_DISPATCH 1
#endif

namespace iqlkit::datalog {

size_t TupleHash::operator()(const Tuple& t) const {
  return static_cast<size_t>(HashRange(t.begin(), t.end(), t.size()));
}

Result<int> Database::AddRelation(std::string_view name, int arity) {
  for (const std::string& existing : names_) {
    if (existing == name) {
      return AlreadyExistsError("relation already declared: " +
                                std::string(name));
    }
  }
  names_.emplace_back(name);
  arities_.push_back(arity);
  facts_.emplace_back();
  index_.emplace_back();
  return static_cast<int>(names_.size()) - 1;
}

Result<int> Database::FindRelation(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return NotFoundError("unknown relation: " + std::string(name));
}

Value Database::InternConstant(std::string_view c) {
  auto it = constants_.find(std::string(c));
  if (it != constants_.end()) return it->second;
  Value v = static_cast<Value>(constants_.size());
  constants_.emplace(std::string(c), v);
  return v;
}

bool Database::AddFact(int rel, Tuple t) {
  IQL_CHECK(rel >= 0 && rel < relation_count());
  IQL_CHECK(static_cast<int>(t.size()) == arities_[rel])
      << "arity mismatch for " << names_[rel];
  auto [it, inserted] = index_[rel].insert(t);
  if (inserted) facts_[rel].push_back(std::move(t));
  return inserted;
}

bool Database::Contains(int rel, const Tuple& t) const {
  return index_[rel].count(t) > 0;
}

size_t Database::TotalFacts() const {
  size_t n = 0;
  for (const auto& f : facts_) n += f.size();
  return n;
}

Result<std::vector<int>> Stratify(const Program& program,
                                  int relation_count) {
  // edges[r] = list of (source, negative?) with an arc source -> r.
  // stratum[head] >= stratum[body]; strictly greater across negation.
  std::vector<int> stratum(relation_count, 0);
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > relation_count + 2) {
      return InvalidArgumentError(
          "program is not stratifiable (recursion through negation)");
    }
    for (const Rule& rule : program.rules) {
      int h = rule.head.relation;
      for (const Atom& a : rule.body) {
        if (stratum[h] < stratum[a.relation]) {
          stratum[h] = stratum[a.relation];
          changed = true;
        }
      }
      for (const Atom& a : rule.negated) {
        if (stratum[h] < stratum[a.relation] + 1) {
          stratum[h] = stratum[a.relation] + 1;
          changed = true;
        }
      }
    }
  }
  return stratum;
}

namespace {

// Checks rule safety and computes the number of variables. `rule_index`
// labels the rule in error messages (rules carry no source positions, so
// the diagnostic anchors on the program-order index instead).
Status CheckRule(const Rule& rule, const Database& db, int rule_index,
                 int* var_count) {
  std::unordered_set<int> positive_vars;
  int max_var = -1;
  auto scan = [&](const Atom& a, bool collect) -> Status {
    if (a.relation < 0 || a.relation >= db.relation_count()) {
      return InvalidArgumentError("atom references unknown relation");
    }
    if (static_cast<int>(a.terms.size()) != db.arity(a.relation)) {
      return InvalidArgumentError("atom arity mismatch for relation " +
                                  std::string(db.name(a.relation)));
    }
    for (const Term& t : a.terms) {
      if (!t.is_var) continue;
      max_var = std::max(max_var, static_cast<int>(t.value));
      if (collect) positive_vars.insert(static_cast<int>(t.value));
    }
    return Status::Ok();
  };
  for (const Atom& a : rule.body) IQL_RETURN_IF_ERROR(scan(a, true));
  for (const Atom& a : rule.negated) IQL_RETURN_IF_ERROR(scan(a, false));
  IQL_RETURN_IF_ERROR(scan(rule.head, false));
  // Safety: every head / negated variable occurs positively.
  auto check_covered = [&](const Atom& a, std::string_view where) -> Status {
    for (const Term& t : a.terms) {
      if (t.is_var && !positive_vars.count(static_cast<int>(t.value))) {
        Diagnostic d;
        d.code = "E005";
        d.severity = Severity::kError;
        d.message = "unsafe rule " + std::to_string(rule_index) +
                    ": variable v" + std::to_string(t.value) + " in the " +
                    std::string(where) + " atom '" +
                    std::string(db.name(a.relation)) +
                    "' is not bound by a positive body atom";
        return ToStatus(d, StatusCode::kInvalidArgument);
      }
    }
    return Status::Ok();
  };
  IQL_RETURN_IF_ERROR(check_covered(rule.head, "head"));
  for (const Atom& a : rule.negated) {
    IQL_RETURN_IF_ERROR(check_covered(a, "negated"));
  }
  *var_count = max_var + 1;
  return Status::Ok();
}

constexpr Value kUnbound = 0xFFFFFFFFu;

// Below this many facts in the outermost atom's range, a join runs
// serially: the fork/join handshake costs more than the scan.
constexpr size_t kParallelMinFacts = 4;

// Nested-loop join driver shared by naive and semi-naive evaluation. For
// semi-naive, `delta_pos` forces one body atom to range over the delta
// facts of the previous round.
class Engine {
 public:
  Engine(const Program& program, Database* db, Stats* stats, ThreadPool* pool,
         Governor* governor, VmOptions vm_opts)
      : program_(program),
        db_(db),
        stats_(stats),
        pool_(pool),
        governor_(governor),
        vm_opts_(vm_opts) {}

  Status Run(EvalMode mode) {
    IQL_ASSIGN_OR_RETURN(std::vector<int> strata,
                         Stratify(program_, db_->relation_count()));
    var_counts_.resize(program_.rules.size());
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      IQL_RETURN_IF_ERROR(CheckRule(program_.rules[i], *db_,
                                    static_cast<int>(i), &var_counts_[i]));
    }
    vm_ = mode == EvalMode::kVm;
    indexed_ = mode == EvalMode::kSemiNaiveIndexed || vm_;
    fuse_ = vm_ && vm_opts_.fuse;
    threaded_ = vm_opts_.threaded;
    if (vm_) CompilePlans();
    stats_->rule_derivations.assign(program_.rules.size(), 0);
    // Context 0 serves serial joins; 1..workers are fan-out slots. Each
    // keeps its own positional indexes, so workers never share an index.
    ctxs_.resize(pool_ != nullptr ? pool_->workers() + 1 : 1);
    for (JoinCtx& ctx : ctxs_) {
      ctx.rule_derivations.assign(program_.rules.size(), 0);
      if (indexed_) ctx.pos_indexes.resize(db_->relation_count());
    }
    int max_stratum = 0;
    for (const Rule& rule : program_.rules) {
      max_stratum = std::max(max_stratum, strata[rule.head.relation]);
    }
    Status run_status = Status::Ok();
    for (int s = 0; s <= max_stratum; ++s) {
      std::vector<size_t> active;
      for (size_t i = 0; i < program_.rules.size(); ++i) {
        if (strata[program_.rules[i].head.relation] == s) active.push_back(i);
      }
      if (active.empty()) continue;
      run_status = mode == EvalMode::kNaive ? RunStratumNaive(active)
                                            : RunStratumSemiNaive(active);
      if (!run_status.ok()) break;
    }
    // Fold worker counters even on a governor trip, so the resource report
    // attached by Evaluate() reflects the work actually done.
    for (const JoinCtx& ctx : ctxs_) {
      stats_->derivations += ctx.derivations;
      stats_->index_probes += ctx.index_probes;
      stats_->index_hits += ctx.index_hits;
      for (size_t i = 0; i < program_.rules.size(); ++i) {
        stats_->rule_derivations[i] += ctx.rule_derivations[i];
      }
    }
    return run_status;
  }

 private:
  // One position of one body atom, lowered for the kVm engine. Which
  // variable positions bind is static -- atoms join strictly in body
  // order, so a variable's first occurrence (scanning atoms, then
  // positions) binds and every later occurrence checks, exactly the
  // decisions MatchAtom makes dynamically through the kUnbound sentinel.
  struct Action {
    enum Kind : uint8_t { kCheckConst, kBind, kCheckVar };
    Kind kind = kCheckConst;
    uint16_t pos = 0;  // tuple position
    Value val = 0;     // constant value (kCheckConst) or variable id
  };

  struct AtomPlan {
    std::vector<Action> actions;  // one per position, in position order
    std::vector<Value> binds;     // variable ids this atom's kBind set
    // Static bound-position mask: constants plus variables bound by an
    // earlier atom (within-atom repeats stay unmasked, as in the dynamic
    // computation). 0 when the atom has no bound position or its arity
    // exceeds the 32-bit mask, forcing the dense scan either way.
    uint32_t mask = 0;
    // Fused re-plan (VmOptions::fuse): the same actions grouped into
    // phase-ordered check lists, then the binds. A within-atom repeat of a
    // variable first bound *by this atom* cannot check the environment
    // before the bind runs, so it becomes a fact-position pair compare
    // against the first occurrence. Failures touch env not at all, which
    // is what lets MatchFused skip the unbind on the failure path.
    std::vector<Action> const_checks;   // fact[pos] == val
    std::vector<Action> var_checks;     // fact[pos] == env[val]
    std::vector<std::pair<uint16_t, uint16_t>> pair_checks;  // pos == pos0
    std::vector<Action> bind_acts;      // env[val] = fact[pos]
  };

  struct RulePlan {
    std::vector<AtomPlan> atoms;  // indexed like Rule::body
  };

  // A lazily built, incrementally extended hash index over the bound
  // positions of one relation. facts_ vectors are append-only, so `stamp`
  // (the indexed prefix length) is all the invalidation state needed.
  struct PosIndex {
    size_t stamp = 0;
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  };

  // Join-time state private to one worker (or to the serial path): the
  // derivation buffer, counters folded into Stats at the end of the run,
  // and -- under kSemiNaiveIndexed -- this worker's positional indexes.
  // Indexes persist across rounds (facts_ is append-only), so each worker
  // amortizes its own builds exactly like the serial engine does.
  struct JoinCtx {
    std::vector<std::pair<int, Tuple>> pending;
    uint64_t derivations = 0;
    uint64_t index_probes = 0;
    uint64_t index_hits = 0;
    std::vector<uint64_t> rule_derivations;
    std::vector<std::unordered_map<uint32_t, PosIndex>> pos_indexes;
  };

  Status RunStratumNaive(const std::vector<size_t>& active) {
    bool changed = true;
    while (changed) {
      IQL_RETURN_IF_ERROR(RoundCheck());
      changed = false;
      ++stats_->iterations;
      std::vector<std::pair<int, Tuple>> pending;
      for (size_t i : active) SolveRule(i, -1, 0, &pending);
      // A trip during the joins discards the whole round's pending buffer:
      // the database stays at the last completed round.
      IQL_RETURN_IF_ERROR(TrippedStatus());
      for (auto& [rel, t] : pending) {
        if (db_->AddFact(rel, std::move(t))) {
          changed = true;
          ++stats_->facts_added;
          ChargeFact(rel);
        }
      }
    }
    return Status::Ok();
  }

  Status RunStratumSemiNaive(const std::vector<size_t>& active) {
    // delta[rel] = (begin, end) range of facts_ that are new this round.
    std::vector<size_t> frontier(db_->relation_count(), 0);
    bool first = true;
    while (true) {
      IQL_RETURN_IF_ERROR(RoundCheck());
      ++stats_->iterations;
      std::vector<size_t> snapshot(db_->relation_count());
      for (int r = 0; r < db_->relation_count(); ++r) {
        snapshot[r] = db_->FactCount(r);
      }
      std::vector<std::pair<int, Tuple>> pending;
      for (size_t i : active) {
        const Rule& rule = program_.rules[i];
        if (first) {
          SolveRule(i, -1, 0, &pending);
        } else {
          // One delta atom per evaluation; others range over all facts.
          for (size_t d = 0; d < rule.body.size(); ++d) {
            int rel = rule.body[d].relation;
            if (frontier[rel] >= snapshot[rel]) continue;  // empty delta
            SolveRule(i, static_cast<int>(d), frontier[rel], &pending);
          }
        }
      }
      IQL_RETURN_IF_ERROR(TrippedStatus());
      bool changed = false;
      for (auto& [rel, t] : pending) {
        if (db_->AddFact(rel, std::move(t))) {
          changed = true;
          ++stats_->facts_added;
          ChargeFact(rel);
        }
      }
      // Next round's deltas are exactly the facts appended by this round:
      // positions [snapshot[rel], FactCount(rel)).
      frontier = std::move(snapshot);
      first = false;
      if (!changed) break;
    }
    return Status::Ok();
  }

  // Full governor check at a round boundary (no-op without a governor).
  // The round budget is checked before the round starts, like the IQL
  // evaluator's top-of-round check, so a kSteps trip always leaves exactly
  // max_steps_per_stage completed rounds in the database.
  Status RoundCheck() {
    if (governor_ == nullptr) return Status::Ok();
    if (stats_->iterations >= governor_->max_steps()) {
      return governor_->TripNow(TripReason::kSteps);
    }
    return governor_->CheckNow();
  }

  // The sticky trip Status if the governor tripped mid-round (the join
  // loops only *record* trips -- SolveRule is fan-out plumbing with no
  // Status channel -- so round drivers re-surface them here, before any
  // pending fact is applied).
  Status TrippedStatus() {
    if (governor_ != nullptr && governor_->tripped()) {
      return governor_->Poll();
    }
    return Status::Ok();
  }

  void ChargeFact(int rel) {
    if (governor_ != nullptr) {
      governor_->accountant()->Charge(48 + db_->arity(rel) * sizeof(Value));
    }
  }

  // Evaluates rule `i` (with an optional delta atom) and appends its
  // derivations, in canonical enumeration order, to `pending`. With a
  // worker pool and a wide enough outermost range, that range is sliced
  // contiguously across workers and the per-worker buffers are
  // concatenated in slice order -- exactly the serial scan order, so
  // facts_ insertion order (and with it every later delta range) is
  // independent of the worker count. Workers skip the level-0 index probe
  // (a bucket scan visits the same facts in the same ascending order a
  // slice scan does) and keep private indexes for the inner levels.
  void SolveRule(size_t i, int delta_atom, size_t delta_begin,
                 std::vector<std::pair<int, Tuple>>* pending) {
    const Rule& rule = program_.rules[i];
    current_rule_ = i;
    if (pool_ != nullptr && !rule.body.empty()) {
      const std::vector<Tuple>& facts = db_->Facts(rule.body[0].relation);
      size_t begin = delta_atom == 0 ? delta_begin : 0;
      size_t width = facts.size() > begin ? facts.size() - begin : 0;
      if (width >= kParallelMinFacts) {
        size_t workers = std::min<size_t>(pool_->workers(), width);
        pool_->ParallelRun(workers, [&](size_t w) {
          if (governor_ != nullptr &&
              FaultInjector::Global().ShouldFail(FaultSite::kWorkerTask)) {
            governor_->TripNow(TripReason::kFault);
            return;
          }
          JoinCtx& ctx = ctxs_[w + 1];
          std::vector<Value> env(var_counts_[i], kUnbound);
          size_t lo = begin + width * w / workers;
          size_t hi = begin + width * (w + 1) / workers;
          for (size_t f = lo; f < hi; ++f) {
            if (governor_ != nullptr && governor_->tripped()) return;
            if (vm_) {
              if (Match(plans_[i].atoms[0], facts[f], env)) {
                JoinBodyVm(rule, plans_[i], env, 1, delta_atom, delta_begin,
                           ctx);
              }
              UnbindPlanned(plans_[i].atoms[0], env);
              continue;
            }
            std::vector<int> trail;
            if (MatchAtom(rule.body[0], facts[f], &env, &trail)) {
              JoinBody(rule, env, 1, delta_atom, delta_begin, ctx);
            }
            for (int v : trail) env[v] = kUnbound;
          }
        });
        for (size_t w = 0; w < workers; ++w) {
          JoinCtx& ctx = ctxs_[w + 1];
          std::move(ctx.pending.begin(), ctx.pending.end(),
                    std::back_inserter(*pending));
          ctx.pending.clear();
        }
        return;
      }
    }
    std::vector<Value> env(var_counts_[i], kUnbound);
    if (vm_) {
      JoinBodyVm(rule, plans_[i], env, 0, delta_atom, delta_begin, ctxs_[0]);
    } else {
      JoinBody(rule, env, 0, delta_atom, delta_begin, ctxs_[0]);
    }
    std::move(ctxs_[0].pending.begin(), ctxs_[0].pending.end(),
              std::back_inserter(*pending));
    ctxs_[0].pending.clear();
  }

  bool MatchAtom(const Atom& atom, const Tuple& fact,
                 std::vector<Value>* env, std::vector<int>* trail) {
    for (size_t k = 0; k < atom.terms.size(); ++k) {
      const Term& t = atom.terms[k];
      if (!t.is_var) {
        if (t.value != fact[k]) return false;
        continue;
      }
      Value& slot = (*env)[t.value];
      if (slot == kUnbound) {
        slot = fact[k];
        trail->push_back(static_cast<int>(t.value));
      } else if (slot != fact[k]) {
        return false;
      }
    }
    return true;
  }

  // Lowers every rule body to flat per-atom action lists (kVm).
  void CompilePlans() {
    plans_.resize(program_.rules.size());
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      RulePlan& plan = plans_[i];
      plan.atoms.assign(program_.rules[i].body.size(), AtomPlan());
      std::unordered_set<Value> bound;  // vars bound by earlier atoms
      for (size_t j = 0; j < program_.rules[i].body.size(); ++j) {
        const Atom& atom = program_.rules[i].body[j];
        AtomPlan& ap = plan.atoms[j];
        std::unordered_set<Value> here;  // vars this atom binds
        for (size_t k = 0; k < atom.terms.size(); ++k) {
          const Term& t = atom.terms[k];
          Action a;
          a.pos = static_cast<uint16_t>(k);
          a.val = t.value;
          if (!t.is_var) {
            a.kind = Action::kCheckConst;
          } else if (bound.count(t.value) || here.count(t.value)) {
            a.kind = Action::kCheckVar;
          } else {
            a.kind = Action::kBind;
            here.insert(t.value);
            ap.binds.push_back(t.value);
          }
          ap.actions.push_back(a);
          if (atom.terms.size() <= 32 &&
              (!t.is_var || bound.count(t.value))) {
            ap.mask |= uint32_t{1} << k;
          }
        }
        if (fuse_) {
          // Phase grouping preserves relative order within each phase, so
          // the conjunction of checks -- a pure function of (fact, env) --
          // is the one the position-order interpreter computes.
          std::unordered_map<Value, uint16_t> first_pos;
          for (const Action& a : ap.actions) {
            switch (a.kind) {
              case Action::kCheckConst:
                ap.const_checks.push_back(a);
                break;
              case Action::kBind:
                first_pos.emplace(a.val, a.pos);
                ap.bind_acts.push_back(a);
                break;
              case Action::kCheckVar: {
                auto it = first_pos.find(a.val);
                if (it != first_pos.end()) {
                  ap.pair_checks.emplace_back(a.pos, it->second);
                } else {
                  ap.var_checks.push_back(a);
                }
                break;
              }
            }
          }
        }
        bound.insert(here.begin(), here.end());
      }
    }
  }

  // The compiled analogue of MatchAtom: applies one atom's action list to
  // a candidate fact. On failure every bind the plan owns is cleared --
  // those variables were necessarily unbound on entry (each is a rule-wide
  // first occurrence), so blanket clearing equals the dynamic trail.
  static bool MatchPlanned(const AtomPlan& ap, const Tuple& fact,
                           std::vector<Value>& env) {
    for (const Action& a : ap.actions) {
      switch (a.kind) {
        case Action::kCheckConst:
          if (fact[a.pos] != a.val) {
            UnbindPlanned(ap, env);
            return false;
          }
          break;
        case Action::kBind:
          env[a.val] = fact[a.pos];
          break;
        case Action::kCheckVar:
          if (env[a.val] != fact[a.pos]) {
            UnbindPlanned(ap, env);
            return false;
          }
          break;
      }
    }
    return true;
  }

  static void UnbindPlanned(const AtomPlan& ap, std::vector<Value>& env) {
    for (Value v : ap.binds) env[v] = kUnbound;
  }

  // The fused matcher: all checks, then all binds. Same decision as
  // MatchPlanned for every (fact, env) -- checks read only earlier-atom
  // bindings and the fact itself -- but a failure returns with env
  // untouched, so no unbind runs on the (dominant) miss path.
  static bool MatchFused(const AtomPlan& ap, const Tuple& fact,
                         std::vector<Value>& env) {
    for (const Action& a : ap.const_checks) {
      if (fact[a.pos] != a.val) return false;
    }
    for (const Action& a : ap.var_checks) {
      if (env[a.val] != fact[a.pos]) return false;
    }
    for (const auto& [pos, pos0] : ap.pair_checks) {
      if (fact[pos] != fact[pos0]) return false;
    }
    for (const Action& a : ap.bind_acts) env[a.val] = fact[a.pos];
    return true;
  }

#ifdef IQLKIT_DATALOG_THREADED_DISPATCH
  // MatchPlanned with the per-action switch replaced by an indirect jump
  // through a label table: each action body jumps straight to the next
  // action's body, so the branch predictor keys on per-transition targets
  // instead of one shared dispatch branch. Same bodies, same order, same
  // result as the switch interpreter.
  static bool MatchPlannedThreaded(const AtomPlan& ap, const Tuple& fact,
                                   std::vector<Value>& env) {
    static const void* const kKind[] = {&&act_check_const, &&act_bind,
                                        &&act_check_var};
    const Action* a = ap.actions.data();
    const Action* const end = a + ap.actions.size();
#define DL_NEXT()                 \
  do {                            \
    if (a == end) return true;    \
    goto* kKind[a->kind];         \
  } while (0)
    DL_NEXT();
  act_check_const:
    if (fact[a->pos] != a->val) goto fail;
    ++a;
    DL_NEXT();
  act_bind:
    env[a->val] = fact[a->pos];
    ++a;
    DL_NEXT();
  act_check_var:
    if (env[a->val] != fact[a->pos]) goto fail;
    ++a;
    DL_NEXT();
  fail:
    UnbindPlanned(ap, env);
    return false;
#undef DL_NEXT
  }
#endif  // IQLKIT_DATALOG_THREADED_DISPATCH

  // Selects the matcher the run's VmOptions ask for. All three compute
  // the identical match decision; they differ only in dispatch mechanics
  // and failure-path writes.
  bool Match(const AtomPlan& ap, const Tuple& fact,
             std::vector<Value>& env) const {
    if (fuse_) return MatchFused(ap, fact, env);
#ifdef IQLKIT_DATALOG_THREADED_DISPATCH
    if (threaded_) return MatchPlannedThreaded(ap, fact, env);
#endif
    return MatchPlanned(ap, fact, env);
  }

  // The kVm executor: iterates body levels j0..end with an explicit
  // cursor stack instead of recursion. Candidate order, index probes, and
  // governor polls mirror JoinBody exactly; a poll failure exhausts the
  // innermost level, and the (tripped) parents then fail their own next
  // poll, reproducing the recursive unwind.
  void JoinBodyVm(const Rule& rule, const RulePlan& plan,
                  std::vector<Value>& env, size_t j0, int delta_atom,
                  size_t delta_begin, JoinCtx& ctx) {
    struct Lvl {
      const std::vector<Tuple>* facts = nullptr;
      const std::vector<size_t>* bucket = nullptr;  // null: dense range
      size_t idx = 0;  // next bucket slot, or next fact position
      size_t end = 0;
    };
    const size_t n = rule.body.size();
    std::vector<Lvl> stack;
    stack.reserve(n - j0);
    bool descend = true;
    for (;;) {
      if (descend) {
        size_t j = j0 + stack.size();
        if (j == n) {
          // Negated atoms, then emit -- as the interpreter's base case.
          bool blocked = false;
          for (const Atom& a : rule.negated) {
            Tuple t(a.terms.size());
            for (size_t k = 0; k < a.terms.size(); ++k) {
              t[k] = a.terms[k].is_var ? env[a.terms[k].value]
                                       : a.terms[k].value;
            }
            if (db_->Contains(a.relation, t)) {
              blocked = true;
              break;
            }
          }
          if (!blocked) {
            ++ctx.derivations;
            ++ctx.rule_derivations[current_rule_];
            Tuple t(rule.head.terms.size());
            for (size_t k = 0; k < rule.head.terms.size(); ++k) {
              const Term& term = rule.head.terms[k];
              t[k] = term.is_var ? env[term.value] : term.value;
            }
            ctx.pending.emplace_back(rule.head.relation, std::move(t));
          }
          descend = false;
          continue;
        }
        const Atom& atom = rule.body[j];
        const AtomPlan& ap = plan.atoms[j];
        const std::vector<Tuple>& facts = db_->Facts(atom.relation);
        size_t begin = static_cast<int>(j) == delta_atom ? delta_begin : 0;
        Lvl lvl;
        lvl.facts = &facts;
        if (indexed_ && ap.mask != 0) {
          const std::vector<size_t>* bucket =
              ProbeIndex(atom, ap.mask, env, ctx);
          if (bucket == nullptr) {
            descend = false;  // guaranteed miss: no frame, advance parent
            continue;
          }
          lvl.bucket = bucket;
          lvl.idx = static_cast<size_t>(
              std::lower_bound(bucket->begin(), bucket->end(), begin) -
              bucket->begin());
          lvl.end = bucket->size();
        } else {
          lvl.idx = begin;
          lvl.end = facts.size();
        }
        stack.push_back(lvl);
      }
      // Advance the innermost open level to its next matching candidate.
      if (stack.empty()) return;
      size_t j = j0 + stack.size() - 1;
      Lvl& lvl = stack.back();
      const AtomPlan& ap = plan.atoms[j];
      UnbindPlanned(ap, env);  // clear the previous candidate's binds
      bool found = false;
      while (lvl.idx < lvl.end) {
        if (governor_ != nullptr && !governor_->Poll().ok()) break;
        size_t f = lvl.bucket != nullptr ? (*lvl.bucket)[lvl.idx] : lvl.idx;
        ++lvl.idx;
        if (Match(ap, (*lvl.facts)[f], env)) {
          found = true;
          break;
        }
      }
      if (found) {
        descend = true;
      } else {
        stack.pop_back();
        descend = false;
      }
    }
  }

  // Recursively joins body atoms j..end; atom delta_atom (if >= 0) ranges
  // only over facts at positions >= delta_begin. Derivations and counters
  // go to `ctx`, which must be private to the calling thread.
  void JoinBody(const Rule& rule, std::vector<Value>& env, size_t j,
                int delta_atom, size_t delta_begin, JoinCtx& ctx) {
    if (j == rule.body.size()) {
      // Negated atoms, then emit.
      for (const Atom& a : rule.negated) {
        Tuple t(a.terms.size());
        for (size_t k = 0; k < a.terms.size(); ++k) {
          t[k] = a.terms[k].is_var ? env[a.terms[k].value]
                                   : a.terms[k].value;
        }
        if (db_->Contains(a.relation, t)) return;
      }
      ++ctx.derivations;
      ++ctx.rule_derivations[current_rule_];
      Tuple t(rule.head.terms.size());
      for (size_t k = 0; k < rule.head.terms.size(); ++k) {
        const Term& term = rule.head.terms[k];
        t[k] = term.is_var ? env[term.value] : term.value;
      }
      ctx.pending.emplace_back(rule.head.relation, std::move(t));
      return;
    }
    const Atom& atom = rule.body[j];
    const std::vector<Tuple>& facts = db_->Facts(atom.relation);
    size_t begin =
        static_cast<int>(j) == delta_atom ? delta_begin : 0;
    if (indexed_ && atom.terms.size() <= 32) {
      uint32_t mask = 0;
      for (size_t k = 0; k < atom.terms.size(); ++k) {
        const Term& t = atom.terms[k];
        if (!t.is_var || env[t.value] != kUnbound) mask |= uint32_t{1} << k;
      }
      if (mask != 0) {
        const std::vector<size_t>* bucket = ProbeIndex(atom, mask, env, ctx);
        if (bucket != nullptr) {
          // Bucket positions ascend, so the delta constraint is a lower
          // bound; every candidate is still re-verified by MatchAtom
          // (bucket keys are hashes, collisions only enlarge buckets).
          auto it = std::lower_bound(bucket->begin(), bucket->end(), begin);
          for (; it != bucket->end(); ++it) {
            if (governor_ != nullptr && !governor_->Poll().ok()) return;
            std::vector<int> trail;
            if (MatchAtom(atom, facts[*it], &env, &trail)) {
              JoinBody(rule, env, j + 1, delta_atom, delta_begin, ctx);
            }
            for (int v : trail) env[v] = kUnbound;
          }
        }
        return;
      }
    }
    for (size_t f = begin; f < facts.size(); ++f) {
      if (governor_ != nullptr && !governor_->Poll().ok()) return;
      std::vector<int> trail;
      if (MatchAtom(atom, facts[f], &env, &trail)) {
        JoinBody(rule, env, j + 1, delta_atom, delta_begin, ctx);
      }
      for (int v : trail) env[v] = kUnbound;
    }
  }

  static uint64_t MaskKey(const Tuple& fact, uint32_t mask) {
    uint64_t h = 0;
    for (size_t k = 0; k < fact.size(); ++k) {
      if (mask & (uint32_t{1} << k)) h = HashCombine(h, fact[k]);
    }
    return h;
  }

  // Returns the bucket of fact positions whose masked fields hash like the
  // current environment's bound values, or nullptr for a guaranteed miss.
  // Builds and extends only `ctx`'s own index.
  const std::vector<size_t>* ProbeIndex(const Atom& atom, uint32_t mask,
                                        const std::vector<Value>& env,
                                        JoinCtx& ctx) {
    PosIndex& index = ctx.pos_indexes[atom.relation][mask];
    const std::vector<Tuple>& facts = db_->Facts(atom.relation);
    for (; index.stamp < facts.size(); ++index.stamp) {
      index.buckets[MaskKey(facts[index.stamp], mask)].push_back(index.stamp);
    }
    ++ctx.index_probes;
    uint64_t key = 0;
    for (size_t k = 0; k < atom.terms.size(); ++k) {
      if (!(mask & (uint32_t{1} << k))) continue;
      const Term& t = atom.terms[k];
      key = HashCombine(key, t.is_var ? env[t.value] : t.value);
    }
    auto it = index.buckets.find(key);
    if (it == index.buckets.end() || it->second.empty()) return nullptr;
    ++ctx.index_hits;
    return &it->second;
  }

  const Program& program_;
  Database* db_;
  Stats* stats_;
  ThreadPool* pool_ = nullptr;
  Governor* governor_ = nullptr;
  std::vector<int> var_counts_;
  std::vector<RulePlan> plans_;  // kVm: one compiled plan per rule
  VmOptions vm_opts_;
  bool indexed_ = false;
  bool vm_ = false;
  bool fuse_ = false;     // kVm with VmOptions::fuse
  bool threaded_ = true;  // kVm dispatch choice (when compiled in)
  size_t current_rule_ = 0;
  // ctxs_[0] is the serial context; ctxs_[1 + w] belongs to worker w.
  std::vector<JoinCtx> ctxs_;
};

}  // namespace

Status Evaluate(const Program& program, Database* db, EvalMode mode,
                Stats* stats, uint32_t num_threads, Governor* governor,
                VmOptions vm) {
  Stats local;
  if (stats == nullptr) stats = &local;
  size_t threads = ResolveThreadCount(num_threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  Engine engine(program, db, stats, pool.has_value() ? &*pool : nullptr,
                governor, vm);
  Status run = engine.Run(mode);
  if (!run.ok() && governor != nullptr && governor->tripped()) {
    ResourceReport report = governor->Report();
    report.steps = stats->iterations;
    report.derivations = stats->derivations;
    run = Status(run.code(),
                 run.message() + " [resource report: " + report.ToString() +
                     "]");
  }
  return run;
}

}  // namespace iqlkit::datalog
