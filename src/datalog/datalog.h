#ifndef IQLKIT_DATALOG_DATALOG_H_
#define IQLKIT_DATALOG_DATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/governor.h"
#include "base/result.h"
#include "base/status.h"

// A stand-alone relational Datalog engine: the classical baseline that IQL
// strictly generalizes ("each Datalog program can be viewed as a valid IQL
// program", §3.4). It exists so the benchmark harness can compare the
// object-based naive inflationary evaluator against a conventional
// relational engine -- both naive and semi-naive -- on the shared
// relational fragment (transitive closure and friends), and so stratified
// negation has a reference implementation.
//
// Deliberately flat and fast: constants are dense ints, tuples are
// fixed-arity vectors, relations are hashed tuple sets.
namespace iqlkit::datalog {

using Value = uint32_t;
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

// Mutable fact store with dense relation ids.
class Database {
 public:
  // Declares a relation; returns its id. Redeclaring a name is an error.
  Result<int> AddRelation(std::string_view name, int arity);
  int relation_count() const { return static_cast<int>(arities_.size()); }
  int arity(int rel) const { return arities_[rel]; }
  std::string_view name(int rel) const { return names_[rel]; }
  Result<int> FindRelation(std::string_view name) const;

  // Interns a constant string into a dense Value.
  Value InternConstant(std::string_view c);
  Value InternConstant(int64_t c) {
    return InternConstant(std::to_string(c));
  }

  // Adds a fact; duplicates are eliminated. Returns true if new.
  bool AddFact(int rel, Tuple t);
  bool Contains(int rel, const Tuple& t) const;
  const std::vector<Tuple>& Facts(int rel) const { return facts_[rel]; }
  size_t FactCount(int rel) const { return facts_[rel].size(); }
  size_t TotalFacts() const;

 private:
  std::vector<std::string> names_;
  std::vector<int> arities_;
  std::vector<std::vector<Tuple>> facts_;  // insertion order
  std::vector<std::unordered_set<Tuple, TupleHash>> index_;
  std::unordered_map<std::string, Value> constants_;

  friend class Engine;
};

// A term in an atom: a variable (id >= 0) or a constant.
struct Term {
  static Term Var(int id) { return Term{true, static_cast<Value>(id)}; }
  static Term Const(Value v) { return Term{false, v}; }
  bool is_var = false;
  Value value = 0;  // variable id or constant value
};

struct Atom {
  int relation = -1;
  std::vector<Term> terms;
};

// head <- body, !negated. Variables in the head or in negated atoms must
// occur in a positive body atom (safety).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Atom> negated;
};

struct Program {
  std::vector<Rule> rules;
};

enum class EvalMode {
  kNaive,      // recompute all joins every round
  kSemiNaive,  // delta-driven joins
  // Delta-driven joins where each body atom with at least one bound
  // position probes an on-demand positional hash index instead of scanning
  // the relation. Indexes are keyed on (relation, bound-position mask),
  // built lazily, and extended incrementally: facts_ vectors are
  // append-only, so a per-index stamp marks the indexed prefix and new
  // facts are absorbed on the next probe. Bucket entries are fact
  // positions in ascending order, so the delta-atom constraint (position
  // >= delta_begin) is a binary search away.
  kSemiNaiveIndexed,
  // kSemiNaiveIndexed joins executed by a compiled engine instead of the
  // recursive interpreter: each body atom is lowered once per run to a
  // flat action list (check-constant / bind / check-variable per position
  // -- which positions bind is static, because atoms always join in body
  // order) plus a static bound-position mask, and an iterative executor
  // drives the candidate cursors with an explicit level stack. Candidate
  // enumeration order, index probes, and governor polls are those of the
  // interpreter, so the fixpoint -- and facts_ insertion order -- is
  // bit-for-bit identical at every thread count.
  kVm,
};

// Execution knobs for the kVm engine (ignored by the interpreted modes).
// Both default to the fast settings; both are output-invariant -- the
// match decision per (atom, fact, env) is a pure function, so candidate
// order, index probes, governor polls, and facts_ insertion order are
// byte-for-byte those of the baseline action interpreter.
struct VmOptions {
  // Dispatch atom actions through a computed-goto loop where the build
  // supports it (GCC/Clang without IQLKIT_FORCE_SWITCH_DISPATCH);
  // otherwise the switch interpreter runs regardless of this flag.
  bool threaded = true;
  // Re-plan each atom's action list into phase-ordered check lists
  // (constant checks, bound-variable checks, within-atom repeat checks as
  // fact-position pair compares) followed by the binds. Checks cannot
  // observe this atom's own binds, so failures write nothing and the
  // per-candidate unbind on the failure path disappears.
  bool fuse = false;
};

struct Stats {
  uint64_t iterations = 0;
  uint64_t derivations = 0;  // satisfying body valuations found
  uint64_t facts_added = 0;
  uint64_t index_probes = 0;  // kSemiNaiveIndexed: bucket lookups
  uint64_t index_hits = 0;    // probes that found a non-empty bucket
  // Per-rule derivation counts (indexed like Program::rules), sized by
  // Evaluate.
  std::vector<uint64_t> rule_derivations;
};

// Evaluates `program` over `db` in place, to the stratified fixpoint.
// Negation must be stratifiable (no recursion through negation) and rules
// must be safe; violations are reported as errors. All modes produce the
// same result; kSemiNaive avoids rediscovering old derivations, and
// kSemiNaiveIndexed additionally replaces inner-loop relation scans with
// hash-index probes.
//
// `num_threads` mirrors EvalOptions::num_threads on the IQL side: 0 means
// hardware concurrency, 1 the serial engine. With N > 1 workers, each
// (rule, delta-atom) join partitions its outermost fact range across
// workers; each worker joins into a private pending buffer (with private
// positional indexes for the inner atoms), and buffers are concatenated in
// slice order, so facts_ insertion order -- and therefore every later
// delta range -- is bit-for-bit the serial one.
//
// `governor` (optional) bounds the run: join loops poll it per fact, every
// round starts with a full check, and a trip aborts *before* the round's
// pending facts are applied, so the database always equals the last
// completed round. Worker-task fault injection is honored when a governor
// is present (a forced fault trips it, draining the pool).
Status Evaluate(const Program& program, Database* db, EvalMode mode,
                Stats* stats = nullptr, uint32_t num_threads = 1,
                Governor* governor = nullptr, VmOptions vm = {});

// Computes the stratification: stratum index per relation, or an error if
// the program recurses through negation.
Result<std::vector<int>> Stratify(const Program& program, int relation_count);

}  // namespace iqlkit::datalog

#endif  // IQLKIT_DATALOG_DATALOG_H_
