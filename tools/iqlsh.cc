// iqlsh: a command-line driver for IQL source units.
//
//   iqlsh [flags] <file.iql>
//
// The file contains `schema { ... }`, optional `input`/`output`
// projections, an optional `instance { ... }` block of ground facts, and a
// `program { ... }` block of rules. iqlsh parses, type checks, classifies
// (§5), evaluates, and prints the result.
//
// Flags:
//   --allow-deletions    enable IQL* negative heads (§4.5)
//   --choose-max         bind `choose` to the maximal candidate (§4.4)
//   --validate-only      parse/typecheck/classify, don't evaluate
//   --print-input        echo the parsed input instance
//   --restrictions       print the §5 sublanguage report
//   --stats              print evaluation statistics
//   --max-steps=N        fixpoint step budget per stage
//   --dot                emit the output instance as a Graphviz digraph
//   --trace              stream per-step fixpoint progress to stderr
//   --write-facts        emit the output as a re-parseable instance block
//   --ground-facts       emit ground-facts(I) in the paper's notation
//   --metrics, :metrics  evaluate, then dump per-rule/per-round metrics
//                        as JSON (EvalMetrics::ToJson)
//   --explain, :explain  print the static greedy join schedule per rule
//                        (no evaluation unless --metrics is also set)
//   --il, :il            print the flat rule IL each VM-eligible rule
//                        compiles to (tree-walk fallbacks marked) and exit;
//                        with --il-opt the optimized IL is printed
//   --vm                  enumerate rule bodies with the register VM
//                        (EvalOptions::engine = kVm); output is
//                        byte-identical to the default tree-walker
//   --il-opt             run the verified IL optimizer over every compiled
//                        rule before the VM executes it (implies nothing
//                        about results: they stay byte-identical); with
//                        --il, print the optimized lowering instead
//   --il-fuse            run the superinstruction fusion pass after the
//                        optimizer (keyed scans, destructures, compare
//                        chains); results stay byte-identical; with --il,
//                        print the fused lowering
//   --dispatch=MODE      VM dispatch loop: `threaded` (computed goto, the
//                        default where the build supports it) or `switch`
//                        (the portable loop); output is identical either
//                        way
//   --lint, :lint        run the iqlint static analyzer and exit (exit
//                        code 2 on errors, 1 on warnings, 0 otherwise)
//   --no-seminaive       force the paper's naive operator on every stage
//   --no-index           disable hash-indexed generators
//   --no-schedule        disable selectivity-aware literal scheduling
//   --threads=N          worker-pool parallel evaluation: 0 = hardware
//                        concurrency (the default), 1 = serial. Results
//                        are bit-for-bit identical for every N; :metrics
//                        reports the resolved count and per-rule
//                        partition totals
//   --timeout=SECONDS    wall-clock deadline for evaluation (fractional
//                        seconds allowed); on expiry the run stops with
//                        DEADLINE_EXCEEDED and a partial-evaluation report
//   --max-memory=BYTES   evaluation memory ceiling (interned values +
//                        derived facts, as metered by the governor's
//                        accountant)
//   --data-dir=DIR       durable evaluation: DIR holds a checksummed
//                        snapshot plus a WAL frame per committed fixpoint
//                        step. A re-run with the same DIR resumes a
//                        partial (tripped/interrupted/crashed) run from
//                        its last committed step and serves a finished
//                        run's output straight from its final snapshot.
//                        An unwritable DIR degrades to plain in-memory
//                        evaluation with a warning on stderr.
//   --no-fsync           skip fsync on snapshots/WAL frames (crash-only
//                        durability, for tests and benchmarks)
//
// SIGINT (Ctrl-C) during evaluation cancels the running query instead of
// killing the process: the governor rolls the instance back to the last
// completed fixpoint step, iqlsh prints a partial-evaluation report, and
// exits 130. Any other governor trip (deadline, memory, step/derivation
// budgets) prints the same report and exits 3. With --data-dir, the
// rolled-back partial is additionally flushed as a durable snapshot before
// exiting (the WAL folds into it), so the next run resumes where Ctrl-C
// landed; the exit code stays 130.

#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "base/fault_injection.h"
#include "iql/eval.h"
#include "iql/il.h"
#include "iql/ilopt.h"
#include "iql/parser.h"
#include "iql/restrict.h"
#include "iql/typecheck.h"
#include "model/dot.h"
#include "model/universe.h"
#include "storage/durable.h"

namespace {

// Signal-handler-visible cancellation token: CancellationToken::Cancel is a
// single atomic store, so it is async-signal-safe.
iqlkit::CancellationToken g_cancel;

extern "C" void HandleSigint(int /*sig*/) { g_cancel.Cancel(); }

int Fail(const iqlkit::Status& status) {
  std::cerr << "iqlsh: " << status << "\n";
  return 1;
}

// Parse/typecheck failures print through the diagnostic renderer when the
// sink caught them (caret excerpt); otherwise fall back to the Status line.
int FailWithDiagnostics(const iqlkit::DiagnosticSink& sink,
                        const iqlkit::Status& status,
                        const std::string& source, const std::string& path) {
  if (sink.empty()) return Fail(status);
  std::cerr << iqlkit::RenderText(sink.diagnostics(), source, path);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iqlkit;
  // Soak/CI harness hook: IQLKIT_FAULTS seeds the process-global fault
  // injector (base/fault_injection.h); unset means disabled.
  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) return Fail(faults);
  bool allow_deletions = false;
  bool choose_max = false;
  bool validate_only = false;
  bool print_input = false;
  bool restrictions = false;
  bool stats_flag = false;
  bool dot = false;
  bool trace = false;
  bool write_facts = false;
  bool ground_facts = false;
  bool metrics_flag = false;
  bool explain_flag = false;
  bool il_flag = false;
  bool il_opt_flag = false;
  bool il_fuse_flag = false;
  bool dispatch_switch = false;
  bool vm_flag = false;
  bool no_seminaive = false;
  bool no_index = false;
  bool no_schedule = false;
  bool lint_flag = false;
  uint64_t max_steps = 0;
  double timeout_seconds = 0;
  uint64_t max_memory = 0;
  uint32_t num_threads = 1;
  bool threads_set = false;
  std::string data_dir;
  bool no_fsync = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // `:name` is shell-friendly shorthand for `--name` (":metrics" reads
    // like a REPL command).
    if (arg.size() > 1 && arg[0] == ':') arg = "--" + arg.substr(1);
    if (arg == "--allow-deletions") {
      allow_deletions = true;
    } else if (arg == "--choose-max") {
      choose_max = true;
    } else if (arg == "--validate-only") {
      validate_only = true;
    } else if (arg == "--print-input") {
      print_input = true;
    } else if (arg == "--restrictions") {
      restrictions = true;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--write-facts") {
      write_facts = true;
    } else if (arg == "--ground-facts") {
      ground_facts = true;
    } else if (arg == "--metrics") {
      metrics_flag = true;
    } else if (arg == "--explain") {
      explain_flag = true;
    } else if (arg == "--il") {
      il_flag = true;
    } else if (arg == "--il-opt") {
      il_opt_flag = true;
    } else if (arg == "--il-fuse") {
      il_fuse_flag = true;
    } else if (arg.rfind("--dispatch=", 0) == 0) {
      std::string mode = arg.substr(11);
      if (mode == "switch") {
        dispatch_switch = true;
      } else if (mode != "threaded") {
        std::cerr << "iqlsh: --dispatch expects 'switch' or 'threaded'\n";
        return 2;
      }
    } else if (arg == "--vm") {
      vm_flag = true;
    } else if (arg == "--no-seminaive") {
      no_seminaive = true;
    } else if (arg == "--no-index") {
      no_index = true;
    } else if (arg == "--no-schedule") {
      no_schedule = true;
    } else if (arg == "--lint") {
      lint_flag = true;
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      max_steps = std::stoull(arg.substr(12));
    } else if (arg.rfind("--timeout=", 0) == 0) {
      timeout_seconds = std::stod(arg.substr(10));
    } else if (arg.rfind("--max-memory=", 0) == 0) {
      max_memory = std::stoull(arg.substr(13));
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<uint32_t>(std::stoul(arg.substr(10)));
      threads_set = true;
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(11);
    } else if (arg == "--no-fsync") {
      no_fsync = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "iqlsh: unknown flag " << arg << "\n";
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: iqlsh [flags] <file.iql>\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "iqlsh: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::string source = buffer.str();
  Universe u;

  if (lint_flag) {
    AnalyzerOptions lint_options;
    DiagnosticSink sink;
    LintSource(&u, source, lint_options, &sink);
    std::cout << RenderText(sink.diagnostics(), source, path);
    if (sink.empty()) std::cout << path << ": no issues\n";
    auto max = sink.max_severity();
    if (!max.has_value() || *max == Severity::kHint) return 0;
    return *max == Severity::kError ? 2 : 1;
  }

  DiagnosticSink diags;
  auto unit = ParseUnit(&u, source, &diags);
  if (!unit.ok()) {
    return FailWithDiagnostics(diags, unit.status(), source, path);
  }

  Status checked = TypeCheck(&u, unit->schema, &unit->program, &diags);
  if (!checked.ok()) {
    return FailWithDiagnostics(diags, checked, source, path);
  }

  if (il_flag) {
    il::IlDumpOptions il_opts;
    il_opts.optimize = il_opt_flag;
    il_opts.fuse = il_fuse_flag;
    const char* header = "=== rule IL ===\n";
    if (il_fuse_flag) {
      header = il_opt_flag ? "=== rule IL (optimized, fused) ===\n"
                           : "=== rule IL (fused) ===\n";
    } else if (il_opt_flag) {
      header = "=== rule IL (optimized) ===\n";
    }
    std::cout << header
              << il::DumpProgramIl(unit->program, u.symbols(), u.types(),
                                   il_opts);
    return 0;
  }

  if (restrictions) {
    RestrictionReport report =
        AnalyzeRestrictions(&u, unit->schema, unit->program);
    std::cout << "=== §5 sublanguage report ===\n"
              << "  ptime-restricted: " << report.ptime_restricted << "\n"
              << "  range-restricted: " << report.range_restricted << "\n"
              << "  invention-free:   " << report.invention_free << "\n"
              << "  recursion-free:   " << report.recursion_free << "\n"
              << "  in IQLpr:         " << report.in_iql_pr << "\n"
              << "  in IQLrr:         " << report.in_iql_rr << "\n";
    for (const std::string& note : report.notes) {
      std::cout << "  note: " << note << "\n";
    }
  }

  // Build the input instance: over the input projection if declared,
  // otherwise over the full schema.
  std::shared_ptr<const Schema> input_schema;
  if (unit->input_names.empty()) {
    input_schema = std::shared_ptr<const Schema>(&unit->schema,
                                                 [](const Schema*) {});
  } else {
    auto projected = unit->schema.Project(unit->input_names);
    if (!projected.ok()) return Fail(projected.status());
    input_schema = std::make_shared<const Schema>(std::move(*projected));
  }
  Instance input(input_schema, &u);
  Status applied = ApplyFacts(*unit, &input);
  if (!applied.ok()) return Fail(applied);
  Status valid = input.Validate();
  if (!valid.ok()) return Fail(valid);
  if (print_input) {
    std::cout << "=== input instance ===\n" << input.ToString();
  }
  if (validate_only) {
    std::cout << "OK: parsed, type checked, input validates\n";
    return 0;
  }
  if (explain_flag) {
    auto schedule = ExplainSchedule(&u, unit->schema, &unit->program, input);
    if (!schedule.ok()) return Fail(schedule.status());
    std::cout << "=== join schedule (static, vs. input) ===\n" << *schedule;
    if (!metrics_flag) return 0;
  }

  // Durable state (--data-dir): recover a previous run of this unit from
  // the directory before evaluating. A finished run is served straight
  // from its final snapshot; a partial resumes from its last committed
  // step; anything unusable (corrupt, different schema) is discarded with
  // a warning and the run starts over.
  std::shared_ptr<const Schema> full_schema(std::shared_ptr<const Schema>(),
                                            &unit->schema);
  std::optional<storage::QueryDurability> durable;
  std::optional<storage::RecoveredRun> recovered;
  std::optional<Instance> served;  // complete run recovered from snapshot
  if (!data_dir.empty()) {
    storage::DurabilityConfig dconfig;
    dconfig.fsync = !no_fsync;
    durable.emplace(storage::QueryDurability::Open(data_dir, dconfig));
    if (!durable->active()) {
      std::cerr << "iqlsh: " << durable->warning() << "\n";
      durable.reset();
    }
  }
  if (durable.has_value()) {
    std::shared_ptr<const Schema> out_schema = full_schema;
    if (!unit->output_names.empty()) {
      auto projected = unit->schema.Project(unit->output_names);
      if (!projected.ok()) return Fail(projected.status());
      out_schema = std::make_shared<const Schema>(std::move(*projected));
    }
    auto rec = durable->Recover(full_schema, out_schema, &u);
    if (!rec.ok()) {
      if (rec.status().code() == StatusCode::kUnavailable) {
        return Fail(rec.status());
      }
      std::cerr << "iqlsh: discarding unusable durable state: "
                << rec.status() << "\n";
    } else if (rec->has_value()) {
      if ((*rec)->complete) {
        std::cerr << "iqlsh: serving finished run from " << data_dir
                  << "/snapshot.iqs\n";
        served = std::move((*rec)->instance);
      } else {
        std::cerr << "iqlsh: resuming from " << data_dir << " at stage "
                  << (*rec)->resume_stage << " step " << (*rec)->resume_step
                  << " (" << (*rec)->frames_replayed << " wal frames"
                  << ((*rec)->tail_truncated ? ", torn tail truncated" : "")
                  << ")\n";
        recovered = std::move(**rec);
      }
    }
  }

  EvalOptions options;
  options.allow_deletions = allow_deletions;
  if (choose_max) {
    options.choose_policy = EvalOptions::ChoosePolicy::kMaxOid;
  }
  if (max_steps > 0) options.limits.max_steps_per_stage = max_steps;
  if (timeout_seconds > 0) options.limits.deadline_seconds = timeout_seconds;
  if (max_memory > 0) options.limits.max_memory_bytes = max_memory;
  options.cancel = &g_cancel;
  std::optional<Instance> partial;
  options.partial = &partial;
  if (trace) options.trace = &std::cerr;
  options.enable_seminaive = !no_seminaive;
  options.enable_indexing = !no_index;
  options.enable_scheduling = !no_schedule;
  if (vm_flag) options.engine = EvalOptions::Engine::kVm;
  options.il_opt = il_opt_flag;
  options.il_fuse = il_fuse_flag;
  if (dispatch_switch) options.dispatch = EvalOptions::Dispatch::kSwitch;
  // Without --threads the library default applies (0 = hardware
  // concurrency); results are identical either way.
  if (threads_set) options.num_threads = num_threads;
  EvalMetrics metrics;
  if (metrics_flag) options.metrics = &metrics;
  EvalStats stats;
  if (durable.has_value() && !served.has_value()) {
    if (recovered.has_value()) {
      options.durability.resume = true;
      options.durability.resume_stage = recovered->resume_stage;
      options.durability.resume_step = recovered->resume_step;
    } else {
      // The durable base snapshot covers the input as absorbed into the
      // full schema -- the state evaluation actually starts from, and the
      // schema every later WAL frame and partial snapshot is keyed to.
      Instance base(full_schema, &u);
      Status absorbed = base.Absorb(input);
      if (!absorbed.ok()) return Fail(absorbed);
      Status begun = durable->BeginRun(base);
      if (!begun.ok()) return Fail(begun);
    }
    options.durability.sink = &*durable;
  }
  // Cancel the running query on Ctrl-C instead of killing the process; the
  // governor rolls the instance back to the last completed step.
  std::signal(SIGINT, HandleSigint);
  auto out = served.has_value()
                 ? Result<Instance>(std::move(*served))
                 : RunUnit(&u, &*unit,
                           recovered.has_value() ? recovered->instance : input,
                           options, &stats);
  std::signal(SIGINT, SIG_DFL);
  if (!out.ok()) {
    if (stats.trip == TripReason::kNone) return Fail(out.status());
    // Governor trip: partial-evaluation report. The instance below is the
    // transactional-rollback state -- identical to the last completed
    // fixpoint step, byte-for-byte reproducible with --max-steps.
    std::cerr << "iqlsh: " << out.status() << "\n";
    std::cerr << "=== partial evaluation (trip: "
              << TripReasonName(stats.trip) << ") ===\n"
              << "  steps completed: " << stats.steps << "\n"
              << "  derivations:     " << stats.derivations << "\n"
              << "  invented oids:   " << stats.invented_oids << "\n"
              << "  elapsed seconds: " << stats.elapsed_seconds << "\n"
              << "  peak memory:     " << stats.peak_memory_bytes << "\n";
    if (partial.has_value()) {
      if (durable.has_value()) {
        // Flush the rolled-back partial as a durable snapshot (the WAL
        // folds into it) so the next --data-dir run resumes right here.
        // The partial report and exit code are unchanged either way.
        Status flushed = durable->Checkpoint(*partial);
        if (flushed.ok()) {
          std::cerr << "  durable snapshot flushed to " << data_dir << "\n";
        } else {
          std::cerr << "iqlsh: snapshot flush failed: " << flushed << "\n";
        }
      }
      if (write_facts) {
        std::cout << WriteFacts(*partial);
      } else {
        std::cout << "=== partial instance (last completed step) ===\n"
                  << partial->ToString();
      }
    }
    if (metrics_flag) std::cerr << metrics.ToJson() << "\n";
    return stats.trip == TripReason::kCancelled ? 130 : 3;
  }
  if (durable.has_value() && !served.has_value()) {
    Status finalized = durable->Finalize(*out);
    if (!finalized.ok()) {
      std::cerr << "iqlsh: could not finalize durable state: " << finalized
                << "\n";
    }
  }

  if (dot) {
    std::cout << InstanceToDot(*out, path);
    // Keep stdout machine-readable; metrics go to stderr here.
    if (metrics_flag) std::cerr << metrics.ToJson() << "\n";
    return 0;
  }
  if (write_facts) {
    // Re-parseable: paste below the schema to reload the output.
    std::cout << WriteFacts(*out);
    if (metrics_flag) std::cerr << metrics.ToJson() << "\n";
    return 0;
  }
  if (ground_facts) {
    std::cout << out->GroundFactsToString();
    if (metrics_flag) std::cerr << metrics.ToJson() << "\n";
    return 0;
  }
  std::cout << "=== output instance ===\n" << out->ToString();
  if (stats_flag) {
    std::cout << "=== stats ===\n"
              << "  steps:         " << stats.steps << "\n"
              << "  derivations:   " << stats.derivations << "\n"
              << "  invented oids: " << stats.invented_oids << "\n"
              << "  facts added:   " << stats.facts_added << "\n"
              << "  facts deleted: " << stats.facts_deleted << "\n";
  }
  if (metrics_flag) {
    std::cout << "=== metrics ===\n" << metrics.ToJson() << "\n";
  }
  return 0;
}
