// iqlserve: a concurrent-query driver for IQL source units.
//
//   iqlserve [flags] <file.iql>...              batch (in-process) mode
//   iqlserve --serve [--port=N] [flags]         TCP server mode
//   iqlserve --connect=PORT [flags] <file>...   TCP client mode
//   iqlserve --sim-clients=N [flags] <file>...  deterministic simulation
//
// Batch mode: every positional argument is one query (its id is the file
// name, with a "#k" suffix under --repeat). Queries are submitted to the
// concurrent scheduler (src/server/scheduler.h) in command-line order and
// the driver waits for every admitted query, printing one summary line
// per query:
//
//   id=tc.iql outcome=completed attempts=1 ticks=3
//   id=big.iql outcome=rejected status=OVERLOAD ...
//
// Per-query flags (--class, --priority, --max-steps, --timeout,
// --max-memory, --reserve) apply to the files that FOLLOW them, so one
// invocation can mix classes and ceilings:
//
//   iqlserve --class=interactive fast.iql --class=batch --priority=-1 slow.iql
//
// Scheduler flags:
//   --workers=N            concurrently running queries (default 4)
//   --queue-capacity=N     waiting-queue bound; beyond it: QUEUE_FULL
//   --quota-interactive=N  per-class admission quotas; beyond: OVERLOAD
//   --quota-batch=N
//   --memory-budget=BYTES  global budget; over it the scheduler degrades
//                          (tightens) or preempts running queries
//   --max-retries=N        retry budget for transient failures (default 2)
//   --retry-base=SECONDS   backoff base (default 0.05)
//   --data-dir=DIR         durable evaluation: per-query snapshot + WAL
//                          under DIR/q-<id>; retried queries resume from
//                          their last committed step, finished queries are
//                          served from their final snapshot after a
//                          restart, tripped partials are snapshotted on
//                          drain. An unwritable DIR degrades to in-memory
//                          with a warning (exit status unaffected).
//   --no-fsync             skip fsync on snapshots/WAL frames (crash-only
//                          durability, for tests and benchmarks)
//   --seed=N               seed for backoff jitter (and the trace, in
//                          deterministic mode)
//   --deterministic        virtual clock, serial execution, poll stride 1:
//                          reproducible admission/preemption traces
//   --trace                stream the scheduler event trace to stderr
//   --repeat=N             submit each file N times (load generation)
//   --print-facts          print each completed/partial query's facts
//   --counters             print the scheduler counters at exit
//
// Serving flags (--serve / --sim-clients; see src/server/serve_loop.h):
//   --serve                TCP server on 127.0.0.1; the first stdout line
//                          is `port=<bound port>` (--port=0 binds an
//                          ephemeral port, so this line is how callers
//                          learn it). SIGTERM/SIGINT begin a graceful
//                          drain: stop accepting, finish or checkpoint
//                          running queries, deliver terminal pages.
//   --port=N               TCP port (default 0 = ephemeral)
//   --connect=PORT         client: submit the positional files to a
//                          --serve instance on 127.0.0.1:PORT over the
//                          wire protocol and page the results back
//   --sim-clients=N        deterministic in-process serving: N simulated
//                          clients split the positional files round-robin
//                          and the whole exchange runs on one thread with
//                          a virtual clock (byte-identical per --seed)
//   --drain-at=MS          simulation: begin a graceful drain at this
//                          virtual millisecond
//   --tenant=NAME          tenant id sent in HELLO (client/sim)
//   --max-sessions=N       concurrent-connection ceiling (default 64)
//   --max-inflight=N       per-session in-flight query quota (default 4)
//   --page-rows=N          fact lines per PAGE frame (default 64)
//   --idle-timeout=MS --read-timeout=MS --write-timeout=MS
//   --drain-grace=MS       grace window before preempting (default 2000)
//
// Exit status: 0 when every query completed; 2 when any query was
// rejected, tripped, or failed; 1 on usage or I/O errors.

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "server/scheduler.h"
#include "server/serve_loop.h"

namespace {

using iqlkit::server::Frame;
using iqlkit::server::FrameDecoder;
using iqlkit::server::FrameType;
using iqlkit::server::FdStream;
using iqlkit::server::kWireVersion;
using iqlkit::server::ParseQueryClass;
using iqlkit::server::QueryClassName;
using iqlkit::server::QueryOutcome;
using iqlkit::server::QueryOutcomeName;
using iqlkit::server::QueryRequest;
using iqlkit::server::QueryResult;
using iqlkit::server::Scheduler;
using iqlkit::server::SchedulerOptions;
using iqlkit::server::ServeOptions;
using iqlkit::server::ServeSimulated;
using iqlkit::server::SimClientSpec;
using iqlkit::server::SimQuery;
using iqlkit::server::TcpServer;

int Usage() {
  std::cerr << "usage: iqlserve [flags] <file.iql>...\n"
               "       iqlserve --serve [--port=N] [flags]\n"
               "       iqlserve --connect=PORT [flags] <file.iql>...\n"
               "       iqlserve --sim-clients=N [flags] <file.iql>...\n"
               "run `head -80 tools/iqlserve.cc` for the flag list\n";
  return 1;
}

struct Submission {
  std::string id;
  QueryRequest request;
};

TcpServer* g_server = nullptr;

void HandleDrainSignal(int) {
  // One atomic store: async-signal-safe.
  if (g_server != nullptr) g_server->RequestDrain();
}

int RunServe(const SchedulerOptions& sched, const ServeOptions& serve,
             uint16_t port, bool print_counters) {
  Scheduler scheduler(sched);
  TcpServer server(&scheduler, serve);
  auto bound = server.Listen(port);
  if (!bound.ok()) {
    std::cerr << "iqlserve: " << bound.status() << "\n";
    return 1;
  }
  // The contract callers script against: the first stdout line names the
  // bound port (essential with --port=0).
  std::cout << "port=" << *bound << std::endl;
  g_server = &server;
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  auto stats = server.Serve();
  g_server = nullptr;
  std::cout << "sessions accepted=" << stats.sessions_accepted
            << " refused=" << stats.sessions_refused
            << " queries=" << stats.totals.queries_accepted
            << " delivered="
            << (stats.totals.delivered_completed +
                stats.totals.delivered_tripped +
                stats.totals.delivered_cancelled +
                stats.totals.delivered_failed)
            << " abandoned=" << stats.totals.abandoned << "\n";
  if (print_counters) {
    auto c = scheduler.counters();
    std::cout << "counters submitted=" << c.submitted
              << " admitted=" << c.admitted << " completed=" << c.completed
              << " tripped_partial=" << c.tripped_partial
              << " failed=" << c.failed << " cancelled=" << c.cancelled
              << " rejected_draining=" << c.rejected_draining << "\n";
  }
  return 0;
}

int RunConnect(uint16_t port, const std::string& tenant,
               const std::vector<Submission>& submissions) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "iqlserve: socket failed\n";
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "iqlserve: connect to 127.0.0.1:" << port << " failed\n";
    ::close(fd);
    return 1;
  }
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  FdStream stream(fd);  // owns fd; nonblocking I/O driven by poll below
  FrameDecoder decoder;
  auto send = [&](const Frame& frame) {
    std::string bytes = iqlkit::server::EncodeFrame(frame);
    for (;;) {
      iqlkit::Status wrote = stream.Write(bytes);
      if (wrote.ok()) {
        (void)stream.Flush();  // best effort; the tail drains on next write
        return true;
      }
      if (!iqlkit::server::IsStallError(wrote)) {
        std::cerr << "iqlserve: " << wrote << "\n";
        return false;
      }
      pollfd pfd{fd, POLLOUT, 0};
      poll(&pfd, 1, 50);
    }
  };

  Frame hello;
  hello.type = FrameType::kHello;
  hello.body.SetInt("version", kWireVersion).SetString("tenant", tenant);
  if (!send(hello)) {
    std::cerr << "iqlserve: handshake write failed\n";
    return 1;
  }

  std::map<std::string, std::string> terminal;  // id -> summary line tail
  std::map<std::string, std::string> data;      // id -> accumulated facts
  bool hello_acked = false;
  size_t next_submit = 0;
  int exit_code = 0;
  while (terminal.size() < submissions.size()) {
    pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, 5000) <= 0) {
      std::cerr << "iqlserve: server went quiet; giving up\n";
      exit_code = 1;
      break;
    }
    std::string chunk;
    auto got = stream.Read(&chunk, 64 * 1024);
    if (!got.ok() || (*got == 0 && stream.closed())) {
      std::cerr << "iqlserve: connection lost\n";
      exit_code = 1;
      break;
    }
    decoder.Feed(chunk);
    for (;;) {
      auto next = decoder.Next();
      if (!next.ok()) {
        std::cerr << "iqlserve: " << next.status() << "\n";
        return 1;
      }
      if (!next->has_value()) break;
      const Frame& frame = **next;
      if (frame.type == FrameType::kHello && !hello_acked) {
        hello_acked = true;
        // Submit everything; the per-session quota is the server's to
        // enforce, and a structured reject is a terminal answer too.
        for (; next_submit < submissions.size(); ++next_submit) {
          const Submission& sub = submissions[next_submit];
          Frame query;
          query.type = FrameType::kQuery;
          query.body.SetString("id", sub.id)
              .SetString("source", sub.request.source)
              .SetString("class", QueryClassName(sub.request.cls))
              .SetInt("priority", sub.request.priority);
          Frame want;
          want.type = FrameType::kPage;
          want.body.SetString("id", sub.id).SetInt("want", 0);
          if (!send(query) || !send(want)) {
            std::cerr << "iqlserve: submit failed\n";
            return 1;
          }
        }
      } else if (frame.type == FrameType::kPage) {
        std::string id = frame.body.StringOr("id", "");
        data[id] += frame.body.StringOr("data", "");
        if (frame.body.BoolOr("done", false)) {
          std::string outcome = frame.body.StringOr("outcome", "?");
          std::string tail = "outcome=" + outcome +
                             " attempts=" +
                             std::to_string(frame.body.IntOr("attempts", 0));
          std::string message = frame.body.StringOr("status", "");
          if (!message.empty()) {
            tail += " status=" + frame.body.StringOr("code", "") + ": " +
                    message;
          }
          terminal[id] = tail;
          if (outcome != "completed") exit_code = 2;
        } else {
          Frame want;
          want.type = FrameType::kPage;
          want.body.SetString("id", id)
              .SetInt("want", frame.body.IntOr("seq", 0) + 1);
          if (!send(want)) {
            std::cerr << "iqlserve: page request failed\n";
            return 1;
          }
        }
      } else if (frame.type == FrameType::kError) {
        std::string id = frame.body.StringOr("id", "");
        std::string tail = "outcome=rejected status=" +
                           frame.body.StringOr("code", "?") + ": " +
                           frame.body.StringOr("message", "");
        if (id.empty()) {
          std::cerr << "iqlserve: server error: " << tail << "\n";
          return 1;
        }
        terminal[id] = tail;
        exit_code = 2;
      } else if (frame.type == FrameType::kDrain) {
        // Queries already in flight still deliver; just stop expecting
        // answers for anything the server will now reject.
      }
    }
  }
  for (const Submission& sub : submissions) {
    auto it = terminal.find(sub.id);
    std::cout << "id=" << sub.id << " "
              << (it == terminal.end() ? "outcome=abandoned" : it->second)
              << "\n";
    if (it == terminal.end()) exit_code = 2;
  }
  return exit_code;
}

int RunSim(size_t n_clients, uint64_t drain_at_ms, const std::string& tenant,
           SchedulerOptions sched, const ServeOptions& serve,
           const std::vector<Submission>& submissions, bool print_counters) {
  sched.deterministic = true;  // simulation is deterministic by definition
  Scheduler scheduler(sched);
  std::vector<SimClientSpec> specs(n_clients);
  for (size_t i = 0; i < specs.size(); ++i) specs[i].tenant = tenant;
  for (size_t i = 0; i < submissions.size(); ++i) {
    SimQuery q;
    q.id = submissions[i].id;
    q.source = submissions[i].request.source;
    q.cls = QueryClassName(submissions[i].request.cls);
    q.priority = submissions[i].request.priority;
    q.at_ms = i / n_clients;  // stagger the rounds
    specs[i % n_clients].queries.push_back(std::move(q));
  }
  auto outcome = ServeSimulated(&scheduler, serve, specs, drain_at_ms,
                                /*max_ms=*/60000);
  int exit_code = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    for (const SimQuery& q : specs[i].queries) {
      auto it = outcome.clients[i].terminal.find(q.id);
      std::string verdict = it == outcome.clients[i].terminal.end()
                                ? (outcome.clients[i].refused ? "refused"
                                                              : "abandoned")
                                : it->second;
      std::cout << "client=" << i << " id=" << q.id << " " << verdict << "\n";
      if (verdict != "outcome:completed") exit_code = 2;
    }
  }
  std::cout << "sessions accepted=" << outcome.stats.sessions_accepted
            << " refused=" << outcome.stats.sessions_refused
            << " delivered="
            << (outcome.stats.totals.delivered_completed +
                outcome.stats.totals.delivered_tripped +
                outcome.stats.totals.delivered_cancelled +
                outcome.stats.totals.delivered_failed)
            << " abandoned=" << outcome.stats.totals.abandoned << "\n";
  if (print_counters) {
    auto c = scheduler.counters();
    std::cout << "counters submitted=" << c.submitted
              << " admitted=" << c.admitted << " completed=" << c.completed
              << " tripped_partial=" << c.tripped_partial
              << " failed=" << c.failed << " cancelled=" << c.cancelled
              << " rejected_draining=" << c.rejected_draining << "\n";
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  // Honor IQLKIT_FAULTS like the other drivers; a malformed spec disables
  // injection with a warning instead of half-applying.
  (void)iqlkit::FaultInjector::Global().ConfigureFromEnv();

  SchedulerOptions sched;
  ServeOptions serve;
  QueryRequest profile;  // class/priority/limits applied to following files
  uint64_t repeat = 1;
  bool print_facts = false;
  bool print_counters = false;
  std::ostringstream trace;
  bool want_trace = false;
  bool serve_mode = false;
  uint16_t port = 0;
  int connect_port = -1;
  size_t sim_clients = 0;
  uint64_t drain_at_ms = 0;
  std::string tenant = "iqlserve";

  std::vector<Submission> submissions;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    try {
      if (arg == "--deterministic") {
        sched.deterministic = true;
      } else if (arg == "--trace") {
        want_trace = true;
      } else if (arg == "--print-facts") {
        print_facts = true;
      } else if (arg == "--counters") {
        print_counters = true;
      } else if (arg == "--serve") {
        serve_mode = true;
      } else if (arg.rfind("--port=", 0) == 0) {
        port = static_cast<uint16_t>(std::stoul(arg.substr(7)));
      } else if (arg.rfind("--connect=", 0) == 0) {
        connect_port = std::stoi(arg.substr(10));
      } else if (arg.rfind("--sim-clients=", 0) == 0) {
        sim_clients = std::stoull(arg.substr(14));
      } else if (arg.rfind("--drain-at=", 0) == 0) {
        drain_at_ms = std::stoull(arg.substr(11));
      } else if (arg.rfind("--tenant=", 0) == 0) {
        tenant = arg.substr(9);
      } else if (arg.rfind("--max-sessions=", 0) == 0) {
        serve.max_sessions = std::stoull(arg.substr(15));
      } else if (arg.rfind("--max-inflight=", 0) == 0) {
        serve.session.max_inflight = std::stoull(arg.substr(15));
      } else if (arg.rfind("--page-rows=", 0) == 0) {
        serve.session.page_rows = std::stoull(arg.substr(12));
      } else if (arg.rfind("--idle-timeout=", 0) == 0) {
        serve.session.idle_timeout_ms = std::stoull(arg.substr(15));
      } else if (arg.rfind("--read-timeout=", 0) == 0) {
        serve.session.read_timeout_ms = std::stoull(arg.substr(15));
      } else if (arg.rfind("--write-timeout=", 0) == 0) {
        serve.session.write_timeout_ms = std::stoull(arg.substr(16));
      } else if (arg.rfind("--drain-grace=", 0) == 0) {
        serve.drain_grace_ms = std::stoull(arg.substr(14));
      } else if (arg.rfind("--workers=", 0) == 0) {
        sched.workers = std::stoull(arg.substr(10));
      } else if (arg.rfind("--queue-capacity=", 0) == 0) {
        sched.queue_capacity = std::stoull(arg.substr(17));
      } else if (arg.rfind("--quota-interactive=", 0) == 0) {
        sched.class_quota[0] = std::stoull(arg.substr(20));
      } else if (arg.rfind("--quota-batch=", 0) == 0) {
        sched.class_quota[1] = std::stoull(arg.substr(14));
      } else if (arg.rfind("--memory-budget=", 0) == 0) {
        sched.global_memory_budget = std::stoull(arg.substr(16));
      } else if (arg.rfind("--max-retries=", 0) == 0) {
        sched.max_retries = std::stoi(arg.substr(14));
      } else if (arg.rfind("--retry-base=", 0) == 0) {
        sched.retry_base_seconds = std::stod(arg.substr(13));
      } else if (arg.rfind("--data-dir=", 0) == 0) {
        sched.data_dir = arg.substr(11);
      } else if (arg == "--no-fsync") {
        sched.durability.fsync = false;
      } else if (arg.rfind("--seed=", 0) == 0) {
        sched.seed = std::stoull(arg.substr(7));
      } else if (arg.rfind("--repeat=", 0) == 0) {
        repeat = std::stoull(arg.substr(9));
      } else if (arg.rfind("--class=", 0) == 0) {
        auto cls = ParseQueryClass(arg.substr(8));
        if (!cls.ok()) {
          std::cerr << "iqlserve: " << cls.status() << "\n";
          return 1;
        }
        profile.cls = *cls;
      } else if (arg.rfind("--priority=", 0) == 0) {
        profile.priority = std::stoi(arg.substr(11));
      } else if (arg.rfind("--max-steps=", 0) == 0) {
        profile.limits.max_steps_per_stage = std::stoull(arg.substr(12));
      } else if (arg.rfind("--timeout=", 0) == 0) {
        profile.limits.deadline_seconds = std::stod(arg.substr(10));
      } else if (arg.rfind("--max-memory=", 0) == 0) {
        profile.limits.max_memory_bytes = std::stoull(arg.substr(13));
      } else if (arg.rfind("--reserve=", 0) == 0) {
        profile.reserve_bytes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "iqlserve: unknown flag " << arg << "\n";
        return Usage();
      } else {
        std::ifstream in(arg);
        if (!in) {
          std::cerr << "iqlserve: cannot open " << arg << "\n";
          return 1;
        }
        std::ostringstream source;
        source << in.rdbuf();
        for (uint64_t k = 0; k < repeat; ++k) {
          Submission sub;
          sub.id = repeat == 1 ? arg : arg + "#" + std::to_string(k + 1);
          sub.request = profile;
          sub.request.id = sub.id;
          sub.request.source = source.str();
          submissions.push_back(std::move(sub));
        }
      }
    } catch (const std::exception&) {
      std::cerr << "iqlserve: bad value in " << arg << "\n";
      return 1;
    }
  }

  if (want_trace) {
    sched.trace = &trace;
    serve.trace = &trace;
  }

  int exit_code = 0;
  if (serve_mode) {
    if (!submissions.empty()) {
      std::cerr << "iqlserve: --serve takes no query files\n";
      return Usage();
    }
    exit_code = RunServe(sched, serve, port, print_counters);
    if (want_trace) std::cerr << trace.str();
    return exit_code;
  }
  if (connect_port >= 0) {
    if (submissions.empty()) return Usage();
    return RunConnect(static_cast<uint16_t>(connect_port), tenant,
                      submissions);
  }
  if (sim_clients > 0) {
    if (submissions.empty()) return Usage();
    exit_code = RunSim(sim_clients, drain_at_ms, tenant, sched, serve,
                       submissions, print_counters);
    if (want_trace) std::cerr << trace.str();
    return exit_code;
  }

  if (submissions.empty()) return Usage();

  {
    Scheduler scheduler(sched);
    struct Pending {
      std::string id;
      uint64_t ticket = 0;
      bool admitted = false;
      iqlkit::Status rejection;
    };
    std::vector<Pending> pending;
    pending.reserve(submissions.size());
    for (auto& sub : submissions) {
      Pending p;
      p.id = sub.id;
      auto ticket = scheduler.Submit(std::move(sub.request));
      if (ticket.ok()) {
        p.admitted = true;
        p.ticket = *ticket;
      } else {
        p.rejection = ticket.status();
      }
      pending.push_back(std::move(p));
    }
    for (const auto& p : pending) {
      if (!p.admitted) {
        std::cout << "id=" << p.id << " outcome=rejected status="
                  << p.rejection << "\n";
        exit_code = 2;
        continue;
      }
      QueryResult result = scheduler.Wait(p.ticket);
      std::cout << "id=" << p.id
                << " outcome=" << QueryOutcomeName(result.outcome)
                << " attempts=" << result.attempts
                << " ticks=" << (result.finish_tick - result.submit_tick);
      if (result.resumed) {
        std::cout << " resumed=" << result.resume_stage << "/"
                  << result.resume_step << " steps=" << result.stats.steps;
      }
      if (!result.status.ok()) std::cout << " status=" << result.status;
      std::cout << "\n";
      if (!result.storage_warning.empty()) {
        std::cerr << "iqlserve: " << p.id
                  << ": storage warning: " << result.storage_warning << "\n";
      }
      if (print_facts && !result.facts.empty()) {
        std::cout << result.facts;
      }
      if (result.outcome != QueryOutcome::kCompleted) exit_code = 2;
    }
    if (print_counters) {
      auto c = scheduler.counters();
      std::cout << "counters submitted=" << c.submitted
                << " admitted=" << c.admitted
                << " rejected_queue_full=" << c.rejected_queue_full
                << " rejected_overload=" << c.rejected_overload
                << " completed=" << c.completed
                << " tripped_partial=" << c.tripped_partial
                << " failed=" << c.failed << " cancelled=" << c.cancelled
                << " retries=" << c.retries
                << " degradations=" << c.degradations
                << " preemptions=" << c.preemptions << "\n";
    }
  }
  if (want_trace) std::cerr << trace.str();
  return exit_code;
}
