// iqlserve: a concurrent-query driver for IQL source units.
//
//   iqlserve [flags] <file.iql>...
//
// Every positional argument is one query (its id is the file name, with a
// "#k" suffix under --repeat). Queries are submitted to the concurrent
// scheduler (src/server/scheduler.h) in command-line order and the driver
// waits for every admitted query, printing one summary line per query:
//
//   id=tc.iql outcome=completed attempts=1 ticks=3
//   id=big.iql outcome=rejected status=OVERLOAD ...
//
// Per-query flags (--class, --priority, --max-steps, --timeout,
// --max-memory, --reserve) apply to the files that FOLLOW them, so one
// invocation can mix classes and ceilings:
//
//   iqlserve --class=interactive fast.iql --class=batch --priority=-1 slow.iql
//
// Scheduler flags:
//   --workers=N            concurrently running queries (default 4)
//   --queue-capacity=N     waiting-queue bound; beyond it: QUEUE_FULL
//   --quota-interactive=N  per-class admission quotas; beyond: OVERLOAD
//   --quota-batch=N
//   --memory-budget=BYTES  global budget; over it the scheduler degrades
//                          (tightens) or preempts running queries
//   --max-retries=N        retry budget for transient failures (default 2)
//   --retry-base=SECONDS   backoff base (default 0.05)
//   --data-dir=DIR         durable evaluation: per-query snapshot + WAL
//                          under DIR/q-<id>; retried queries resume from
//                          their last committed step, finished queries are
//                          served from their final snapshot after a
//                          restart, tripped partials are snapshotted on
//                          drain. An unwritable DIR degrades to in-memory
//                          with a warning (exit status unaffected).
//   --no-fsync             skip fsync on snapshots/WAL frames (crash-only
//                          durability, for tests and benchmarks)
//   --seed=N               seed for backoff jitter (and the trace, in
//                          deterministic mode)
//   --deterministic        virtual clock, serial execution, poll stride 1:
//                          reproducible admission/preemption traces
//   --trace                stream the scheduler event trace to stderr
//   --repeat=N             submit each file N times (load generation)
//   --print-facts          print each completed/partial query's facts
//   --counters             print the scheduler counters at exit
//
// Exit status: 0 when every query completed; 2 when any query was
// rejected, tripped, or failed; 1 on usage or I/O errors.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "server/scheduler.h"

namespace {

using iqlkit::server::ParseQueryClass;
using iqlkit::server::QueryOutcome;
using iqlkit::server::QueryOutcomeName;
using iqlkit::server::QueryRequest;
using iqlkit::server::QueryResult;
using iqlkit::server::Scheduler;
using iqlkit::server::SchedulerOptions;

int Usage() {
  std::cerr << "usage: iqlserve [flags] <file.iql>...\n"
               "run `head -40 tools/iqlserve.cc` for the flag list\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Honor IQLKIT_FAULTS like the other drivers; a malformed spec disables
  // injection with a warning instead of half-applying.
  (void)iqlkit::FaultInjector::Global().ConfigureFromEnv();

  SchedulerOptions sched;
  QueryRequest profile;  // class/priority/limits applied to following files
  uint64_t repeat = 1;
  bool print_facts = false;
  bool print_counters = false;
  std::ostringstream trace;
  bool want_trace = false;

  struct Submission {
    std::string id;
    QueryRequest request;
  };
  std::vector<Submission> submissions;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    try {
      if (arg == "--deterministic") {
        sched.deterministic = true;
      } else if (arg == "--trace") {
        want_trace = true;
      } else if (arg == "--print-facts") {
        print_facts = true;
      } else if (arg == "--counters") {
        print_counters = true;
      } else if (arg.rfind("--workers=", 0) == 0) {
        sched.workers = std::stoull(arg.substr(10));
      } else if (arg.rfind("--queue-capacity=", 0) == 0) {
        sched.queue_capacity = std::stoull(arg.substr(17));
      } else if (arg.rfind("--quota-interactive=", 0) == 0) {
        sched.class_quota[0] = std::stoull(arg.substr(20));
      } else if (arg.rfind("--quota-batch=", 0) == 0) {
        sched.class_quota[1] = std::stoull(arg.substr(14));
      } else if (arg.rfind("--memory-budget=", 0) == 0) {
        sched.global_memory_budget = std::stoull(arg.substr(16));
      } else if (arg.rfind("--max-retries=", 0) == 0) {
        sched.max_retries = std::stoi(arg.substr(14));
      } else if (arg.rfind("--retry-base=", 0) == 0) {
        sched.retry_base_seconds = std::stod(arg.substr(13));
      } else if (arg.rfind("--data-dir=", 0) == 0) {
        sched.data_dir = arg.substr(11);
      } else if (arg == "--no-fsync") {
        sched.durability.fsync = false;
      } else if (arg.rfind("--seed=", 0) == 0) {
        sched.seed = std::stoull(arg.substr(7));
      } else if (arg.rfind("--repeat=", 0) == 0) {
        repeat = std::stoull(arg.substr(9));
      } else if (arg.rfind("--class=", 0) == 0) {
        auto cls = ParseQueryClass(arg.substr(8));
        if (!cls.ok()) {
          std::cerr << "iqlserve: " << cls.status() << "\n";
          return 1;
        }
        profile.cls = *cls;
      } else if (arg.rfind("--priority=", 0) == 0) {
        profile.priority = std::stoi(arg.substr(11));
      } else if (arg.rfind("--max-steps=", 0) == 0) {
        profile.limits.max_steps_per_stage = std::stoull(arg.substr(12));
      } else if (arg.rfind("--timeout=", 0) == 0) {
        profile.limits.deadline_seconds = std::stod(arg.substr(10));
      } else if (arg.rfind("--max-memory=", 0) == 0) {
        profile.limits.max_memory_bytes = std::stoull(arg.substr(13));
      } else if (arg.rfind("--reserve=", 0) == 0) {
        profile.reserve_bytes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "iqlserve: unknown flag " << arg << "\n";
        return Usage();
      } else {
        std::ifstream in(arg);
        if (!in) {
          std::cerr << "iqlserve: cannot open " << arg << "\n";
          return 1;
        }
        std::ostringstream source;
        source << in.rdbuf();
        for (uint64_t k = 0; k < repeat; ++k) {
          Submission sub;
          sub.id = repeat == 1 ? arg : arg + "#" + std::to_string(k + 1);
          sub.request = profile;
          sub.request.id = sub.id;
          sub.request.source = source.str();
          submissions.push_back(std::move(sub));
        }
      }
    } catch (const std::exception&) {
      std::cerr << "iqlserve: bad value in " << arg << "\n";
      return 1;
    }
  }
  if (submissions.empty()) return Usage();
  if (want_trace) sched.trace = &trace;

  int exit_code = 0;
  {
    Scheduler scheduler(sched);
    struct Pending {
      std::string id;
      uint64_t ticket = 0;
      bool admitted = false;
      iqlkit::Status rejection;
    };
    std::vector<Pending> pending;
    pending.reserve(submissions.size());
    for (auto& sub : submissions) {
      Pending p;
      p.id = sub.id;
      auto ticket = scheduler.Submit(std::move(sub.request));
      if (ticket.ok()) {
        p.admitted = true;
        p.ticket = *ticket;
      } else {
        p.rejection = ticket.status();
      }
      pending.push_back(std::move(p));
    }
    for (const auto& p : pending) {
      if (!p.admitted) {
        std::cout << "id=" << p.id << " outcome=rejected status="
                  << p.rejection << "\n";
        exit_code = 2;
        continue;
      }
      QueryResult result = scheduler.Wait(p.ticket);
      std::cout << "id=" << p.id
                << " outcome=" << QueryOutcomeName(result.outcome)
                << " attempts=" << result.attempts
                << " ticks=" << (result.finish_tick - result.submit_tick);
      if (result.resumed) {
        std::cout << " resumed=" << result.resume_stage << "/"
                  << result.resume_step << " steps=" << result.stats.steps;
      }
      if (!result.status.ok()) std::cout << " status=" << result.status;
      std::cout << "\n";
      if (!result.storage_warning.empty()) {
        std::cerr << "iqlserve: " << p.id
                  << ": storage warning: " << result.storage_warning << "\n";
      }
      if (print_facts && !result.facts.empty()) {
        std::cout << result.facts;
      }
      if (result.outcome != QueryOutcome::kCompleted) exit_code = 2;
    }
    if (print_counters) {
      auto c = scheduler.counters();
      std::cout << "counters submitted=" << c.submitted
                << " admitted=" << c.admitted
                << " rejected_queue_full=" << c.rejected_queue_full
                << " rejected_overload=" << c.rejected_overload
                << " completed=" << c.completed
                << " tripped_partial=" << c.tripped_partial
                << " failed=" << c.failed << " retries=" << c.retries
                << " degradations=" << c.degradations
                << " preemptions=" << c.preemptions << "\n";
    }
  }
  if (want_trace) std::cerr << trace.str();
  return exit_code;
}
