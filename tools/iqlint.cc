// iqlint: the IQL static analyzer.
//
//   iqlint [flags] <file.iql> [more files...]
//
// Lexes, parses, type checks, and runs the analyzer passes over each file,
// printing every diagnostic with a clang-style source excerpt (or as JSON).
// See docs/LANGUAGE.md ("Static analysis") for the code catalogue.
//
// Flags:
//   --format=text|json   output format (default text)
//   --no-hints           suppress O-level optimizer hints
//   --il                 instead of linting, parse + type check and print
//                        the flat rule IL each VM-eligible rule compiles
//                        to (tree-walk fallbacks marked); used to
//                        maintain the golden IL corpus
//
// Exit status: 2 if any file has an error, 1 if any has a warning,
// 0 otherwise (hints never fail a run).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "iql/il.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

int main(int argc, char** argv) {
  using namespace iqlkit;
  bool json = false;
  bool hints = true;
  bool il = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--no-hints") {
      hints = false;
    } else if (arg == "--il") {
      il = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "iqlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: iqlint [--format=text|json] [--no-hints] "
                 "<file.iql>...\n";
    return 2;
  }
  int exit_code = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "iqlint: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string source = buffer.str();

    if (il) {
      Universe u;
      auto unit = ParseUnit(&u, source);
      if (!unit.ok()) {
        std::cerr << "iqlint: " << unit.status() << "\n";
        return 2;
      }
      Status checked = TypeCheck(&u, unit->schema, &unit->program);
      if (!checked.ok()) {
        std::cerr << "iqlint: " << checked << "\n";
        return 2;
      }
      std::cout << il::DumpProgramIl(unit->program, u.symbols(), u.types());
      continue;
    }

    Universe u;
    AnalyzerOptions options;
    options.hints = hints;
    DiagnosticSink sink;
    LintSource(&u, source, options, &sink);

    if (json) {
      std::cout << RenderJson(sink.diagnostics(), path) << "\n";
    } else {
      std::cout << RenderText(sink.diagnostics(), source, path);
      if (sink.empty() && paths.size() == 1) {
        std::cout << path << ": no issues\n";
      }
    }
    auto max = sink.max_severity();
    if (max.has_value()) {
      if (*max == Severity::kError) {
        exit_code = std::max(exit_code, 2);
      } else if (*max == Severity::kWarning) {
        exit_code = std::max(exit_code, 1);
      }
    }
  }
  return exit_code;
}
