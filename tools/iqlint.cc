// iqlint: the IQL static analyzer.
//
//   iqlint [flags] <file.iql> [more files...]
//
// Lexes, parses, type checks, and runs the analyzer passes over each file,
// printing every diagnostic with a clang-style source excerpt (or as JSON).
// See docs/LANGUAGE.md ("Static analysis") for the code catalogue.
//
// Flags:
//   --format=text|json   output format (default text)
//   --no-hints           suppress O-level / L-level optimizer hints
//   --il                 also compile every VM-eligible rule to the flat
//                        IL and report the L-series IL diagnostics (dead
//                        instructions, unbindable probes, statically empty
//                        bodies, verifier violations) through the same
//                        sink, so both formats cover them
//   --il-dump            instead of linting, print the IL each VM-eligible
//                        rule compiles to (tree-walk fallbacks marked);
//                        used to maintain the golden IL corpus
//   --il-dump-opt        like --il-dump, after the verified optimizer
//                        passes (what `iqlsh --engine=vm --il-opt` runs)
//
// Exit status: 2 if any file has an error, 1 if any has a warning,
// 0 otherwise (hints never fail a run).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "iql/il.h"
#include "iql/ilopt.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

int main(int argc, char** argv) {
  using namespace iqlkit;
  bool json = false;
  bool hints = true;
  bool il = false;
  bool il_dump = false;
  bool il_dump_opt = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--no-hints") {
      hints = false;
    } else if (arg == "--il") {
      il = true;
    } else if (arg == "--il-dump") {
      il_dump = true;
    } else if (arg == "--il-dump-opt") {
      il_dump = true;
      il_dump_opt = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "iqlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: iqlint [--format=text|json] [--no-hints] [--il] "
                 "[--il-dump|--il-dump-opt] <file.iql>...\n";
    return 2;
  }
  int exit_code = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "iqlint: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string source = buffer.str();

    if (il_dump) {
      Universe u;
      auto unit = ParseUnit(&u, source);
      if (!unit.ok()) {
        std::cerr << "iqlint: " << unit.status() << "\n";
        return 2;
      }
      Status checked = TypeCheck(&u, unit->schema, &unit->program);
      if (!checked.ok()) {
        std::cerr << "iqlint: " << checked << "\n";
        return 2;
      }
      il::IlDumpOptions opts;
      opts.optimize = il_dump_opt;
      std::cout << il::DumpProgramIl(unit->program, u.symbols(), u.types(),
                                     opts);
      continue;
    }

    Universe u;
    AnalyzerOptions options;
    options.hints = hints;
    DiagnosticSink sink;
    LintSource(&u, source, options, &sink);

    if (il) {
      // The analyzer consumed its own universe state; re-front-end into a
      // fresh one for the IL pipeline. A file that no longer parses or
      // type checks already has the errors in the sink -- skip quietly.
      Universe u2;
      auto unit = ParseUnit(&u2, source);
      if (unit.ok() &&
          TypeCheck(&u2, unit->schema, &unit->program).ok()) {
        DiagnosticSink il_sink;
        il::LintProgramIl(unit->program, u2.symbols(), u2.types(), &il_sink);
        for (const Diagnostic& d : il_sink.diagnostics()) {
          if (!hints && d.severity == Severity::kHint) continue;
          sink.Report(d);
        }
      }
    }

    if (json) {
      std::cout << RenderJson(sink.diagnostics(), path) << "\n";
    } else {
      std::cout << RenderText(sink.diagnostics(), source, path);
      if (sink.empty() && paths.size() == 1) {
        std::cout << path << ": no issues\n";
      }
    }
    auto max = sink.max_severity();
    if (max.has_value()) {
      if (*max == Severity::kError) {
        exit_code = std::max(exit_code, 2);
      } else if (*max == Severity::kWarning) {
        exit_code = std::max(exit_code, 1);
      }
    }
  }
  return exit_code;
}
