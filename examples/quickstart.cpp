// Quickstart: the Genesis database of Example 1.1, built through the
// public API, validated against its cyclic schema, and queried with a
// small IQL program.
//
//   $ ./examples/quickstart

#include <iostream>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/instance.h"
#include "model/universe.h"

using namespace iqlkit;

int main() {
  Universe u;

  // ---- Schema (Example 1.1) -------------------------------------------
  // Note the cyclicity: FirstGeneration's type mentions FirstGeneration,
  // and the union type in AncestorOfCelebrity's desc column.
  auto unit = ParseUnit(&u, R"(
    schema {
      class FirstGeneration :
        [name: D, spouse: FirstGeneration, children: {SecondGeneration}];
      class SecondGeneration : [name: D, occupations: {D}];
      relation FoundedLineage : SecondGeneration;
      relation AncestorOfCelebrity :
        [anc: SecondGeneration, desc: (D | [spouse: D])];
      relation FounderNames : D;   # query output
    }
    program {
      # Names of the second-generation members who founded a lineage.
      FounderNames(n) :-
        FoundedLineage(p), p^ = [name: n, occupations: O].
    }
  )");
  if (!unit.ok()) {
    std::cerr << unit.status() << "\n";
    return 1;
  }
  const Schema& schema = unit->schema;
  std::cout << "=== Schema ===\n" << schema.ToString() << "\n";

  // ---- Instance --------------------------------------------------------
  Instance inst(&schema, &u);
  ValueStore& v = u.values();
  auto sym = [&](std::string_view s) { return u.Intern(s); };
  auto oid = [&](std::string_view cls, std::string_view label) {
    auto o = inst.CreateOid(cls);
    IQL_CHECK(o.ok()) << o.status();
    inst.NameOid(*o, label);
    return *o;
  };
  Oid adam = oid("FirstGeneration", "adam");
  Oid eve = oid("FirstGeneration", "eve");
  Oid cain = oid("SecondGeneration", "cain");
  Oid abel = oid("SecondGeneration", "abel");
  Oid seth = oid("SecondGeneration", "seth");
  Oid other = oid("SecondGeneration", "other");

  ValueId children = v.Set(
      {v.OfOid(cain), v.OfOid(abel), v.OfOid(seth), v.OfOid(other)});
  IQL_CHECK(inst.SetOidValue(adam, v.Tuple({{sym("name"), v.Const("Adam")},
                                            {sym("spouse"), v.OfOid(eve)},
                                            {sym("children"), children}}))
                .ok());
  IQL_CHECK(inst.SetOidValue(eve, v.Tuple({{sym("name"), v.Const("Eve")},
                                           {sym("spouse"), v.OfOid(adam)},
                                           {sym("children"), children}}))
                .ok());
  auto person = [&](std::string_view name,
                    std::vector<std::string_view> occupations) {
    std::vector<ValueId> occ;
    for (auto o : occupations) occ.push_back(v.Const(o));
    return v.Tuple({{sym("name"), v.Const(name)},
                    {sym("occupations"), v.Set(std::move(occ))}});
  };
  IQL_CHECK(inst.SetOidValue(cain, person("Cain", {"Farmer", "Nomad",
                                                   "Artisan"}))
                .ok());
  IQL_CHECK(inst.SetOidValue(abel, person("Abel", {"Shepherd"})).ok());
  IQL_CHECK(inst.SetOidValue(seth, person("Seth", {})).ok());
  // nu(other) stays undefined: "Genesis is rather vague on this point."

  for (Oid founder : {cain, seth, other}) {
    IQL_CHECK(inst.AddToRelation("FoundedLineage", v.OfOid(founder)).ok());
  }
  IQL_CHECK(inst.AddToRelation(
                    "AncestorOfCelebrity",
                    v.Tuple({{sym("anc"), v.OfOid(seth)},
                             {sym("desc"), v.Const("Noah")}}))
                .ok());
  IQL_CHECK(inst.AddToRelation(
                    "AncestorOfCelebrity",
                    v.Tuple({{sym("anc"), v.OfOid(cain)},
                             {sym("desc"),
                              v.Tuple({{sym("spouse"), v.Const("Ada")}})}}))
                .ok());

  Status valid = inst.Validate();
  std::cout << "=== Instance (validates: " << valid << ") ===\n"
            << inst.ToString() << "\n";

  // ---- Query -----------------------------------------------------------
  auto out = EvaluateProgram(&u, schema, &unit->program, inst);
  if (!out.ok()) {
    std::cerr << out.status() << "\n";
    return 1;
  }
  std::cout << "=== FounderNames (IQL query) ===\n";
  for (ValueId name : out->Relation(u.Intern("FounderNames"))) {
    std::cout << "  " << v.ToString(name) << "\n";
  }
  std::cout << "(note: 'other' founded a lineage but has an undefined "
               "value -- incomplete information -- so it has no name "
               "to report)\n";
  return 0;
}
