// Computational completeness, on stage: a Turing machine compiled to IQL.
// Time points and tape cells are invented oids; a binary-increment machine
// runs, ripples a carry, and grows the tape leftward on overflow.
//
//   $ ./examples/turing 10111

#include <iostream>

#include "model/universe.h"
#include "transform/turing.h"

using namespace iqlkit;

int main(int argc, char** argv) {
  std::string bits = argc > 1 ? argv[1] : "111";
  TuringMachine tm;
  tm.start_state = "scan";
  tm.accepting_states = {"done"};
  tm.transitions = {
      {"scan", "0", "scan", "0", 'R'},
      {"scan", "1", "scan", "1", 'R'},
      {"scan", "B", "inc", "B", 'L'},
      {"inc", "1", "inc", "0", 'L'},
      {"inc", "0", "done", "1", 'L'},
      {"inc", "B", "done", "1", 'L'},
  };
  std::vector<std::string> word;
  for (char c : bits) {
    if (c != '0' && c != '1') {
      std::cerr << "usage: turing <binary word>\n";
      return 2;
    }
    word.emplace_back(1, c);
  }

  std::cout << "=== The IQL program simulating any deterministic TM ===\n"
            << TuringSimulatorSource() << "\n";

  Universe u;
  auto r = RunTuringMachine(&u, tm, word);
  IQL_CHECK(r.ok()) << r.status();
  std::cout << "input : " << bits << "\n";
  std::cout << "output: ";
  for (const std::string& s : r->final_tape) std::cout << s;
  std::cout << "\nmachine steps (invented time points): " << r->steps
            << ", accepted: " << (r->accepted ? "yes" : "no") << "\n";
  std::cout << "\nEvery step invented one T-oid; tape overflow invented\n"
               "fresh Cell-oids. This is the mechanism behind the paper's\n"
               "completeness results (Prop 4.2.2, Thm 4.2.4): invention\n"
               "manufactures unbounded structure, so IQL expresses every\n"
               "computable database transformation.\n";
  return 0;
}
