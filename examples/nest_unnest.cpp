// Example 3.4.1: the classical complex-object operations nest and unnest
// written in IQL. Unnesting is a single rule with a set variable;
// nesting "simulates the COL data-function" with one invented set-valued
// oid per group.
//
//   $ ./examples/nest_unnest

#include <iostream>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

using namespace iqlkit;

int main() {
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema {
      relation R1 : [D, {D}];   # input nested relation
      relation R2 : [D, D];     # unnested
      relation R3 : [D, {D}];   # re-nested
      relation R4 : D;          # group keys
      relation R5 : [D, P];     # key -> its group oid
      class P : {D};
    }
    input R1;
    output R2, R3;
    program {
      # unnest R1 into R2
      R2(x, y) :- R1(x, Y), Y(y).
      ;
      # nest R2 into R3, via one invented set-oid per key (G1 ...
      R4(x) :- R2(x, y).
      R5(x, z) :- R4(x).
      z^(y) :- R2(x, y), R5(x, z).
      ;
      # ... then G2)
      R3(x, z^) :- R5(x, z).
    }
  )");
  IQL_CHECK(unit.ok()) << unit.status();

  auto in_schema = unit->schema.Project({"R1"});
  IQL_CHECK(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u);
  ValueStore& v = u.values();
  auto row = [&](std::string_view key, std::vector<std::string_view> vals) {
    std::vector<ValueId> elems;
    for (auto s : vals) elems.push_back(v.Const(s));
    IQL_CHECK(
        input
            .AddToRelation(
                "R1", v.Tuple({{PositionalAttr(&u, 1), v.Const(key)},
                               {PositionalAttr(&u, 2),
                                v.Set(std::move(elems))}}))
            .ok());
  };
  row("fruit", {"apple", "pear"});
  row("vegetable", {"leek"});
  row("empty", {});  // lost by unnest: the known nest/unnest asymmetry

  std::cout << "=== Input R1 ===\n" << input.ToString() << "\n";

  auto out = RunUnit(&u, &*unit, input);
  IQL_CHECK(out.ok()) << out.status();

  std::cout << "=== After unnest (R2) and re-nest (R3) ===\n"
            << out->ToString() << "\n";
  std::cout << "R3 recovers R1 minus the empty-set row: unnest(R1) has no "
               "tuple for 'empty', so nest cannot rebuild it.\n";
  return 0;
}
