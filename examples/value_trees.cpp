// §7: the value-based model. Builds a cyclic object instance, translates
// it to pure values (psi) -- regular infinite trees with duplicate
// elimination -- and back to objects (phi), illustrating Props 7.1.3/7.1.4
// and Figure 2's "using IQL for the value-based model" pipeline.
//
//   $ ./examples/value_trees

#include <iostream>

#include "model/universe.h"
#include "vmodel/bisim.h"
#include "vmodel/encode.h"

using namespace iqlkit;

int main() {
  Universe u;
  TypePool& t = u.types();
  auto sym = [&](std::string_view s) { return u.Intern(s); };

  auto schema = std::make_shared<Schema>(&u);
  IQL_CHECK(schema
                ->DeclareClass("Node",
                               t.Tuple({{sym("name"), t.Base()},
                                        {sym("succ"),
                                         t.Set(t.ClassNamed("Node"))}}))
                .ok());
  IQL_CHECK(ValidateVSchema(*schema).ok());

  // A 4-ring of nodes all named "n": four distinct oids, but all four have
  // the *same* infinite unfolding.
  Instance inst(schema, &u);
  ValueStore& v = u.values();
  std::vector<Oid> ring;
  for (int i = 0; i < 4; ++i) {
    auto o = inst.CreateOid("Node");
    IQL_CHECK(o.ok());
    inst.NameOid(*o, "node" + std::to_string(i));
    ring.push_back(*o);
  }
  for (int i = 0; i < 4; ++i) {
    IQL_CHECK(inst.SetOidValue(
                      ring[i],
                      v.Tuple({{sym("name"), v.Const("n")},
                               {sym("succ"),
                                v.Set({v.OfOid(ring[(i + 1) % 4])})}}))
                  .ok());
  }
  std::cout << "=== Object instance (4-ring, uniform labels) ===\n"
            << inst.ToString() << "\n";

  // psi: objects -> pure values. All four nodes are bisimilar, so the
  // class collapses to ONE regular tree: #0=[name:"n", succ:{#0}].
  auto pure = Psi(inst);
  IQL_CHECK(pure.ok()) << pure.status();
  std::cout << "=== psi(I): pure values of class Node ===\n";
  for (RNodeId root : pure->classes.at(sym("Node"))) {
    std::cout << "  " << pure->graph.ToString(root) << "\n";
  }
  std::cout << "(duplicate elimination: 4 oids, 1 pure value -- the "
               "regular tree is the unfolding of the ring)\n\n";

  // phi: values -> objects. One fresh oid per pure value.
  auto back = Phi(&u, schema, *pure);
  IQL_CHECK(back.ok()) << back.status();
  std::cout << "=== phi(psi(I)): back to objects ===\n"
            << back->ToString() << "\n";

  // Prop 7.1.4: psi(phi(V)) == V.
  auto again = Psi(*back);
  IQL_CHECK(again.ok()) << again.status();
  std::cout << "psi(phi(psi(I))) == psi(I): "
            << (VInstanceEqual(*pure, *again) ? "true" : "false")
            << "   (Proposition 7.1.4)\n";

  // Contrast: distinct labels keep the values distinct.
  Instance labeled(schema, &u);
  std::vector<Oid> ring2;
  for (int i = 0; i < 3; ++i) {
    auto o = labeled.CreateOid("Node");
    IQL_CHECK(o.ok());
    ring2.push_back(*o);
  }
  for (int i = 0; i < 3; ++i) {
    IQL_CHECK(labeled
                  .SetOidValue(
                      ring2[i],
                      v.Tuple({{sym("name"), v.ConstInt(i)},
                               {sym("succ"),
                                v.Set({v.OfOid(ring2[(i + 1) % 3])})}}))
                  .ok());
  }
  auto pure2 = Psi(labeled);
  IQL_CHECK(pure2.ok()) << pure2.status();
  std::cout << "\n=== A labeled 3-ring keeps 3 distinct pure values ===\n";
  for (RNodeId root : pure2->classes.at(sym("Node"))) {
    std::cout << "  " << pure2->graph.ToString(root) << "\n";
  }
  return 0;
}
