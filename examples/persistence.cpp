// Persistence and interchange: two ways to move instances between
// processes.
//  1. The `instance { ... }` text format (WriteFacts / ApplyFacts): human-
//     readable, schema-aware, handles cyclic values via named oids.
//  2. The Prop 4.2.2 relational flattening (EncodeRelational /
//     DecodeRelational): a fixed vocabulary any relational system can
//     store, with surrogate oids for the structured values.
// Both round-trip up to O-isomorphism -- the only equality oids admit.
//
//   $ ./examples/persistence

#include <iostream>

#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"
#include "transform/relational.h"

using namespace iqlkit;

int main() {
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema {
      class Dept : [name: D, head: Emp];
      class Emp  : [name: D, dept: Dept, reports: {Emp}];
      relation OnCall : Emp;
    }
    instance {
      Dept(@eng);
      Emp(@ada);
      Emp(@lin);
      @eng = [name: "Engineering", head: @ada];
      @ada = [name: "Ada", dept: @eng, reports: {@lin}];
      @lin = [name: "Lin", dept: @eng, reports: {}];
      OnCall(@lin);
    }
  )");
  IQL_CHECK(unit.ok()) << unit.status();
  Instance original(&unit->schema, &u);
  IQL_CHECK(ApplyFacts(*unit, &original).ok());
  IQL_CHECK(original.Validate().ok()) << original.Validate();

  // --- 1. Text round trip ------------------------------------------------
  std::string facts = WriteFacts(original);
  std::cout << "=== WriteFacts: re-parseable text ===\n" << facts << "\n";
  std::string source =
      "schema {\n" + unit->schema.ToString() + "}\n" + facts;
  auto reloaded_unit = ParseUnit(&u, source);
  IQL_CHECK(reloaded_unit.ok()) << reloaded_unit.status();
  Instance reloaded(&reloaded_unit->schema, &u);
  IQL_CHECK(ApplyFacts(*reloaded_unit, &reloaded).ok());
  std::cout << "text round trip O-isomorphic: "
            << (OIsomorphic(original, reloaded) ? "true" : "false")
            << "\n\n";

  // --- 2. Relational flattening ------------------------------------------
  auto vocab = RelationalVocabulary(&u);
  IQL_CHECK(vocab.ok()) << vocab.status();
  auto vocab_ptr = std::make_shared<const Schema>(std::move(*vocab));
  auto flat = EncodeRelational(original, vocab_ptr);
  IQL_CHECK(flat.ok()) << flat.status();
  std::cout << "=== Relational flattening (Prop 4.2.2 vocabulary) ===\n";
  std::cout << "surrogates: "
            << flat->ClassExtent(u.Intern("Node")).size() << " nodes\n";
  for (const char* rel :
       {"ObjectIn", "NuValue", "TupleField", "SetElem", "ConstNode",
        "RefNode", "RelFact"}) {
    std::cout << "  " << rel << ": "
              << flat->Relation(u.Intern(rel)).size() << " facts\n";
  }
  auto schema_ptr = std::shared_ptr<const Schema>(&unit->schema,
                                                  [](const Schema*) {});
  auto decoded = DecodeRelational(*flat, schema_ptr);
  IQL_CHECK(decoded.ok()) << decoded.status();
  std::cout << "relational round trip O-isomorphic: "
            << (OIsomorphic(original, *decoded) ? "true" : "false") << "\n";
  return 0;
}
