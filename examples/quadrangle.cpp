// Figure 1 / Theorems 4.3.1 and 4.4.1: the quadrangle query. Plain IQL can
// only construct *both* symmetric candidate answers ("did the hen make the
// egg, or the egg the hen?"); the IQL+ `choose` literal deterministically
// selects one without breaking genericity, because the candidates are
// isomorphic.
//
//   $ ./examples/quadrangle

#include <iostream>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"

using namespace iqlkit;

namespace {

constexpr std::string_view kSource = R"(
  schema {
    relation R    : D;              # input: exactly two constants
    class M : D;                    # one marker per orientation (x, y)
    class Q : D;                    # quadrangle vertices
    relation M2    : [D, D, M];
    relation Quad  : [M, Q, Q, Q, Q];
    relation EdgeC : [M, Q, (D | Q)];
    relation Pick  : M;
    relation R'    : [Q, (D | Q)];  # output: Figure 1's answer
  }
  input R;
  output R', Q;
  program {
    # One candidate copy per orientation of the two constants.
    M2(x, y, m) :- R(x), R(y), x != y.
    ;
    Quad(m, o1, o2, o3, o4) :- M2(x, y, m).
    ;
    # Figure 1: o1, o3 attach to x; o2, o4 to y; cycle o1->o2->o3->o4->o1.
    EdgeC(m, o1, x)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o3, x)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o2, y)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o4, y)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o1, o2) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o2, o3) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o3, o4) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    EdgeC(m, o4, o1) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
    ;
    Pick(m) :- choose.              # IQL+: select one copy
    ;
    R'(u, v) :- Pick(m), EdgeC(m, u, v).
  }
)";

Result<Instance> RunWithPolicy(Universe* u, EvalOptions::ChoosePolicy p) {
  auto unit = ParseUnit(u, kSource);
  if (!unit.ok()) return unit.status();
  auto in_schema = unit->schema.Project({"R"});
  if (!in_schema.ok()) return in_schema.status();
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), u);
  IQL_RETURN_IF_ERROR(input.AddToRelation("R", u->values().Const("a")));
  IQL_RETURN_IF_ERROR(input.AddToRelation("R", u->values().Const("b")));
  EvalOptions options;
  options.choose_policy = p;
  return RunUnit(u, &*unit, input, options);
}

}  // namespace

int main() {
  Universe u;
  auto out_min = RunWithPolicy(&u, EvalOptions::ChoosePolicy::kMinOid);
  IQL_CHECK(out_min.ok()) << out_min.status();

  std::cout << "=== The chosen quadrangle (input {a, b}) ===\n"
            << out_min->ToString() << "\n";
  std::cout << "8 edges: o1, o3 connect to one constant; o2, o4 to the "
               "other; the four vertices form a directed 4-cycle.\n\n";

  // Genericity check: a different deterministic choice policy picks the
  // other candidate copy -- and gets an O-isomorphic answer.
  auto out_max = RunWithPolicy(&u, EvalOptions::ChoosePolicy::kMaxOid);
  IQL_CHECK(out_max.ok()) << out_max.status();
  std::cout << "choosing the other copy gives an O-isomorphic answer: "
            << (OIsomorphic(*out_min, *out_max) ? "true" : "false")
            << "\n\n";
  std::cout
      << "Theorem 4.3.1: *without* choose, no IQL program computes this\n"
         "query -- creating o1 before o4 (or vice versa) would break\n"
         "genericity, so IQL can only produce all copies (Thm 4.2.4),\n"
         "and IQL+ = IQL + choose is complete (Thm 4.4.1).\n";
  return 0;
}
