// Example 1.2: converting a flat binary edge relation into a cyclic,
// object-based representation of the same graph -- the paper's flagship
// IQL program, exercising oid invention, set accretion through temporary
// oids, weak assignment, and sequential composition.
//
//   $ ./examples/graph_encoding

#include <iostream>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

using namespace iqlkit;

int main() {
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema {
      relation R  : [D, D];        # input: edges over node names
      relation R0 : D;             # stage 1: node names
      relation R9 : [D, P, P'];    # stage 2: two invented oids per node
      class P  : [D, {P}];         # output: node = [name, successors]
      class P' : {P};              # temporaries for set construction
    }
    input R;
    output P, P';
    program {
      # Stage 1 (Datalog): collect the node names.
      R0(x) :- R(x, y).
      R0(x) :- R(y, x).
      # Stage 2 (invention): two fresh oids per node, detDL-style.
      R9(x, p, p') :- R0(x).
      # Stage 3 (grouping): collect successors into the P'-oids' sets.
      p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
      ;
      # Stage 4 (weak assignment): runs only after the sets are complete.
      p^ = [x, p'^] :- R9(x, p, p').
    }
  )");
  IQL_CHECK(unit.ok()) << unit.status();

  // A small cyclic graph: a -> b -> c -> a plus a -> c.
  auto in_schema = unit->schema.Project({"R"});
  IQL_CHECK(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u);
  ValueStore& v = u.values();
  auto edge = [&](std::string_view a, std::string_view b) {
    IQL_CHECK(input
                  .AddToRelation(
                      "R", v.Tuple({{PositionalAttr(&u, 1), v.Const(a)},
                                    {PositionalAttr(&u, 2), v.Const(b)}}))
                  .ok());
  };
  edge("a", "b");
  edge("b", "c");
  edge("c", "a");
  edge("a", "c");

  std::cout << "=== Input (flat representation) ===\n"
            << input.ToString() << "\n";

  EvalStats stats;
  auto out = RunUnit(&u, &*unit, input, {}, &stats);
  IQL_CHECK(out.ok()) << out.status();

  std::cout << "=== Output (object-based representation) ===\n"
            << out->ToString() << "\n";
  std::cout << "invented oids: " << stats.invented_oids
            << ", fixpoint steps: " << stats.steps << "\n";
  std::cout << "\nEach node is now an oid whose value is [name, {successor "
               "oids}]; the cycle a->b->c->a lives in nu, while every "
               "individual o-value stays a finite tree. Run it twice and "
               "the concrete oids differ, but the results are O-isomorphic "
               "(Theorem 4.1.3).\n";
  return 0;
}
