// §6: type inheritance via union types. Declares the university schema of
// Examples 6.1.2 / 6.2.1 in the succinct isa style, compiles the isa
// hierarchy away (tau_P types + subclass unions), and runs stock IQL on
// the result.
//
//   $ ./examples/inheritance

#include <iostream>

#include "inherit/isa.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

using namespace iqlkit;

int main() {
  Universe u;
  TypePool& t = u.types();
  auto sym = [&](std::string_view s) { return u.Intern(s); };

  // Succinct declarations: each class lists only its own attributes.
  Schema base(&u);
  IQL_CHECK(base.DeclareClass("person",
                              t.Tuple({{sym("name"), t.Base()}}))
                .ok());
  IQL_CHECK(base.DeclareClass("student",
                              t.Tuple({{sym("course_taken"), t.Base()}}))
                .ok());
  IQL_CHECK(base.DeclareClass("instructor",
                              t.Tuple({{sym("course_taught"), t.Base()}}))
                .ok());
  IQL_CHECK(base.DeclareClass("ta", t.EmptyTuple()).ok());
  IQL_CHECK(base.DeclareRelation(
                    "Teaches",
                    t.Tuple({{sym("s"), t.ClassNamed("student")},
                             {sym("i"), t.ClassNamed("instructor")}}))
                .ok());
  IQL_CHECK(base.DeclareRelation("TaNames", t.Base()).ok());

  IsaHierarchy isa;
  IQL_CHECK(isa.Declare(sym("student"), sym("person")).ok());
  IQL_CHECK(isa.Declare(sym("instructor"), sym("person")).ok());
  IQL_CHECK(isa.Declare(sym("ta"), sym("student")).ok());
  IQL_CHECK(isa.Declare(sym("ta"), sym("instructor")).ok());

  std::cout << "=== Declared (succinct) schema ===\n" << base.ToString();
  std::cout << "  with: student isa person, instructor isa person,\n"
               "        ta isa student, ta isa instructor\n\n";

  auto compiled = CompileInheritance(&u, base, isa);
  IQL_CHECK(compiled.ok()) << compiled.status();
  std::cout << "=== Compiled schema (isa erased into union types) ===\n"
            << compiled->ToString() << "\n";

  // Build an instance against the compiled schema.
  auto schema = std::make_shared<const Schema>(std::move(*compiled));
  Instance inst(schema, &u);
  ValueStore& v = u.values();
  auto mk = [&](std::string_view cls, std::string_view name,
                std::vector<std::pair<std::string_view, std::string_view>>
                    extra) {
    auto o = inst.CreateOid(cls);
    IQL_CHECK(o.ok()) << o.status();
    inst.NameOid(*o, name);
    std::vector<std::pair<Symbol, ValueId>> fields = {
        {sym("name"), v.Const(name)}};
    for (auto [a, val] : extra) fields.emplace_back(sym(a), v.Const(val));
    IQL_CHECK(inst.SetOidValue(*o, v.Tuple(std::move(fields))).ok());
    return *o;
  };
  Oid alice = mk("student", "alice", {{"course_taken", "databases"}});
  Oid bob = mk("ta", "bob",
               {{"course_taken", "theory"}, {"course_taught", "databases"}});
  mk("instructor", "carol", {{"course_taught", "theory"}});
  // bob (a ta) teaches alice: legal because the compiled Teaches type is
  // [s: (student | ta), i: (instructor | ta)].
  IQL_CHECK(inst.AddToRelation("Teaches",
                               v.Tuple({{sym("s"), v.OfOid(alice)},
                                        {sym("i"), v.OfOid(bob)}}))
                .ok());
  IQL_CHECK(inst.Validate().ok()) << inst.Validate();
  std::cout << "=== Instance ===\n" << inst.ToString() << "\n";

  // Stock IQL over the compiled schema: names of tas who teach someone.
  auto program = ParseProgramText(&u, *schema, R"(
    TaNames(n) :- Teaches([s: x, i: y]), ta(y),
                  y^ = [name: n, course_taken: c, course_taught: c'].
  )");
  IQL_CHECK(program.ok()) << program.status();
  auto out = EvaluateProgram(&u, *schema, &*program, inst);
  IQL_CHECK(out.ok()) << out.status();
  std::cout << "=== TAs who teach (stock IQL on the compiled schema) ===\n";
  for (ValueId name : out->Relation(sym("TaNames"))) {
    std::cout << "  " << v.ToString(name) << "\n";
  }
  return 0;
}
